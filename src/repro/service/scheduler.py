"""Deterministic fair-share scheduling across concurrent jobs.

The sweep service's :class:`~repro.service.jobstore.JobStore` interleaves
specs from many tenants over one shared worker pool.  Slot selection must
be (a) *weighted* — a priority-3 job gets ~3x the assignment slots of a
priority-1 job while both have work — and (b) *deterministic*: replaying
the same submissions and assignment requests in the same order must yield
the same interleaving, because the service's bit-identity tests (and any
operator debugging a fairness complaint) depend on reproducible schedules.

Stride scheduling (Waldspurger & Weihl, OSDI '94) gives both with pure
integer arithmetic: every job carries a ``pass`` value that advances by
``stride = STRIDE_SCALE // priority`` each time the job is charged a slot,
and the eligible job with the smallest ``(pass, submission_seq)`` pair wins
the next slot.  Over any window, slots divide proportionally to priority;
every eligible job's pass is eventually the minimum, so none starves —
a job with pending specs is served within roughly one round of the share
weights.  New jobs start at the current pass floor so a latecomer cannot
monopolize the pool "catching up" on slots it never queued for.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.errors import ConfigurationError

#: Stride numerator.  lcm(1..10): every priority in the documented 1-10
#: range divides it exactly, so relative shares are exact, not rounded.
STRIDE_SCALE = 2520


class FairShareScheduler:
    """Stride scheduler over job ids; all math is integer and ordered.

    Not thread-safe on its own — the JobStore drives it under its lock.
    """

    def __init__(self) -> None:
        #: job id -> [pass, stride, submission sequence] (mutable cells).
        self._jobs: Dict[str, List[int]] = {}
        self._seq = 0
        #: Pass floor left behind by removed jobs, so a service that goes
        #: briefly idle does not reset accumulated fairness to zero.
        self._floor = 0

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._jobs

    def __len__(self) -> int:
        return len(self._jobs)

    def add(self, job_id: str, priority: int = 1) -> None:
        if priority < 1:
            raise ConfigurationError(
                f"job priority must be a positive integer, got {priority!r}"
            )
        if job_id in self._jobs:
            raise ConfigurationError(f"job {job_id!r} is already scheduled")
        start = min(
            (entry[0] for entry in self._jobs.values()), default=self._floor
        )
        self._jobs[job_id] = [
            start, max(1, STRIDE_SCALE // priority), self._seq
        ]
        self._seq += 1

    def remove(self, job_id: str) -> None:
        entry = self._jobs.pop(job_id, None)
        if entry is not None:
            self._floor = max(self._floor, entry[0])

    def order(self, eligible: Iterable[str]) -> List[str]:
        """Eligible job ids ranked best-first by ``(pass, submission_seq)``.

        Returns a full ranking rather than a single winner because the
        JobStore may have to skip the front-runner (every one of its ready
        specs excludes the asking worker) and fall through to the next-best
        job; only the job that actually receives the slot is charged.
        """
        known = [job_id for job_id in eligible if job_id in self._jobs]
        known.sort(
            key=lambda job_id: (self._jobs[job_id][0], self._jobs[job_id][2])
        )
        return known

    def charge(self, job_id: str) -> None:
        """Advance ``job_id``'s pass by its stride: one slot consumed."""
        entry = self._jobs.get(job_id)
        if entry is not None:
            entry[0] += entry[1]
