"""HTTP/JSON plane of the sweep service (stdlib ``http.server``, no deps).

Routes::

    GET    /healthz              liveness (always unauthenticated)
    GET    /stats                service counters, queue depth, worker count
    GET    /jobs                 summaries of every job, submission order
    POST   /jobs                 submit a SweepSpec -> job summary (201)
    GET    /jobs/<id>            summary + per-spec progress
    GET    /jobs/<id>/results    SweepResult-shaped JSON (streamed);
                                 ``?partial=1`` returns whatever has landed
                                 on a still-running job instead of 409
    DELETE /jobs/<id>            cancel (404 unknown, 409 already terminal)

Auth: when the service has a token, every route but ``/healthz`` requires
``Authorization: Bearer <token>`` (or ``X-Repro-Token: <token>``); the
same token guards the worker TCP plane.  Payloads deliberately use a
``state`` field, never ``type``/``kind`` — those tag the worker wire
protocol and the journal, and keeping the vocabularies disjoint lets the
PROTO001 closure lint hold them to the wire contract.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.errors import ConfigurationError
from repro.service.jobstore import TERMINAL_JOB_STATES, JobStore


class _ServiceHTTPRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    #: Close-delimited responses: the results endpoint streams JSON with no
    #: Content-Length, which HTTP/1.0 framing makes unambiguous.
    protocol_version = "HTTP/1.0"

    # The default handler logs every request line to stderr; the daemon's
    # stderr is its operational log and per-poll noise would swamp it.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    @property
    def _store(self) -> JobStore:
        return self.server.store  # type: ignore[attr-defined]

    @property
    def _token(self) -> Optional[str]:
        return self.server.token  # type: ignore[attr-defined]

    # ------------------------------------------------------------- replies
    def _json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _stream_json(self, payload: Dict[str, Any]) -> None:
        """Stream a (possibly large) document chunk by chunk.

        ``iterencode`` never materializes the full serialization, so a
        results document with thousands of runs goes out in bounded memory;
        the connection close delimits the body.
        """
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.end_headers()
        for chunk in json.JSONEncoder().iterencode(payload):
            self.wfile.write(chunk.encode("utf-8"))

    def _error(self, status: int, message: str) -> None:
        self._json(status, {"error": message})

    # ---------------------------------------------------------------- auth
    def _authorized(self, path: str) -> bool:
        if self._token is None or path == "/healthz":
            return True
        header = self.headers.get("Authorization", "")
        if header == f"Bearer {self._token}":
            return True
        return self.headers.get("X-Repro-Token") == self._token

    def _deny(self) -> None:
        self._error(
            401,
            "unauthorized: pass 'Authorization: Bearer <token>' or "
            "'X-Repro-Token: <token>'",
        )

    # -------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        path = url.path.rstrip("/") or "/"
        if not self._authorized(path):
            self._deny()
            return
        if path == "/healthz":
            self._json(200, {"status": "ok"})
            return
        if path == "/stats":
            self._json(200, self._store.stats_snapshot())
            return
        if path == "/jobs":
            self._json(200, {"jobs": self._store.list_jobs()})
            return
        parts = [part for part in path.split("/") if part]
        if len(parts) == 2 and parts[0] == "jobs":
            detail = self._store.job_detail(parts[1])
            if detail is None:
                self._error(404, f"unknown job {parts[1]!r}")
                return
            self._json(200, detail)
            return
        if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "results":
            self._get_results(parts[1], parse_qs(url.query))
            return
        self._error(404, f"no such route: GET {path}")

    def _get_results(self, job_id: str, query: Dict[str, Any]) -> None:
        summary = self._store.job_summary(job_id)
        if summary is None:
            self._error(404, f"unknown job {job_id!r}")
            return
        partial = query.get("partial", ["0"])[-1] not in ("0", "", "false")
        if summary["state"] not in TERMINAL_JOB_STATES and not partial:
            self._error(
                409,
                f"job {job_id!r} is still {summary['state']}; poll "
                f"GET /jobs/{job_id} or pass ?partial=1 for interim results",
            )
            return
        payload = self._store.job_results(job_id)
        if payload is None:
            self._error(404, f"unknown job {job_id!r}")
            return
        self._stream_json(payload)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = urlparse(self.path).path.rstrip("/")
        if not self._authorized(path):
            self._deny()
            return
        if path != "/jobs":
            self._error(404, f"no such route: POST {path}")
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
            payload = json.loads(self.rfile.read(length) or b"{}")
            if not isinstance(payload, dict):
                raise ValueError("the request body must be a JSON object")  # repro: noqa[ERR001] -- control flow: caught just below and mapped to a 400 reply
        except ValueError as error:
            self._error(400, f"invalid JSON body: {error}")
            return
        try:
            job = self._submit(payload)
        except Exception as error:  # noqa: BLE001 - client-fault -> 400
            self._error(400, f"invalid submission: {error}")
            return
        self._json(201, job)

    def _submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        from repro.runner.spec import SweepSpec

        document = payload.get("sweep", payload)
        sweep = SweepSpec.from_dict(document)
        priority = payload.get("priority", 1)
        name = payload.get("name")
        return self._store.submit(
            sweep,
            name=str(name) if name is not None else None,
            priority=priority,
        )

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        path = urlparse(self.path).path.rstrip("/")
        if not self._authorized(path):
            self._deny()
            return
        parts = [part for part in path.split("/") if part]
        if len(parts) != 2 or parts[0] != "jobs":
            self._error(404, f"no such route: DELETE {path}")
            return
        cancelled = self._store.cancel(parts[1])
        if cancelled is not None:
            self._json(200, cancelled)
            return
        summary = self._store.job_summary(parts[1])
        if summary is None:
            self._error(404, f"unknown job {parts[1]!r}")
        else:
            self._error(
                409,
                f"job {parts[1]!r} is already {summary['state']}; "
                f"nothing to cancel",
            )


class ServiceHTTPServer:
    """Threaded HTTP listener bound to one JobStore; start/close lifecycle."""

    def __init__(
        self,
        store: JobStore,
        host: str = "127.0.0.1",
        port: int = 0,
        token: Optional[str] = None,
    ) -> None:
        self._bind = (host, port)
        self._store = store
        self._token = token
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self.host = host
        self.port = port

    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    def start(self) -> "ServiceHTTPServer":
        try:
            server = ThreadingHTTPServer(
                self._bind, _ServiceHTTPRequestHandler
            )
        except OSError as error:
            raise ConfigurationError(
                f"cannot bind service http api to "
                f"{self._bind[0]}:{self._bind[1]}: {error}"
            )
        server.daemon_threads = True
        server.store = self._store  # type: ignore[attr-defined]
        server.token = self._token  # type: ignore[attr-defined]
        self._server = server
        self.host, self.port = server.server_address[:2]
        self._thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def close(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
