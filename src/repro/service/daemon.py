"""The sweep service daemon: worker TCP plane + HTTP plane + recovery.

:class:`ServiceBroker` speaks the same JSON-lines wire protocol as the
single-sweep :class:`~repro.runner.distributed.Broker` — ``hello`` /
``welcome``, ``next`` / ``task`` / ``idle``, ``heartbeat``, ``result``,
``error``, ``checkpoint``, ``release`` — so stock ``repro worker
--connect`` processes serve it unchanged.  The differences are exactly the
multi-tenant ones: task state lives in a shared
:class:`~repro.service.jobstore.JobStore` instead of one task list, task
ids are ``job-id/position`` strings, a bad shared token is answered with a
``reject`` message, and the broker never drains — the service outlives any
one job, so idle workers keep polling (pools should run ``--redial``).

:class:`SweepService` composes the store, both planes, and the
write-ahead journal; constructing it on the journal/cache directories of
a SIGKILL'd daemon replays every live job before the listeners open.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.runner.cache import ResultCache
from repro.runner.distributed import (
    DEFAULT_LEASE_SECONDS,
    DEFAULT_MAX_ATTEMPTS,
    _read,
    _send,
    connect_host,
    parse_address,
)
from repro.runner.journal import ServiceJournal
from repro.service.httpapi import ServiceHTTPServer
from repro.service.jobstore import JobStore, parse_task_id


class ServiceBroker:
    """Worker-facing TCP plane of the service: sockets in, JobStore calls out.

    Thread layout mirrors the single-sweep broker: one acceptor, one
    handler per worker connection, one lease monitor.  All task-state
    logic lives in the store; this class only moves messages.
    """

    def __init__(
        self,
        store: JobStore,
        host: str = "127.0.0.1",
        port: int = 0,
        token: Optional[str] = None,
    ) -> None:
        self._store = store
        self._bind = (host, port)
        self.host = host
        self.port = port
        self.token = token
        self._closed = threading.Event()
        self._lock = threading.Lock()
        self._listener: Optional[socket.socket] = None
        self._connections: List[socket.socket] = []
        self._threads: List[threading.Thread] = []

    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    # ----------------------------------------------------------- lifecycle
    def start(self) -> "ServiceBroker":
        try:
            self._listener = socket.create_server(self._bind)
        except OSError as error:
            raise ConfigurationError(
                f"cannot bind service worker plane to "
                f"{self._bind[0]}:{self._bind[1]}: {error}"
            )
        self.host, self.port = self._listener.getsockname()[:2]
        for target in (self._accept_loop, self._monitor_loop):
            thread = threading.Thread(target=target, daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def close(self) -> None:
        self._closed.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            connections = list(self._connections)
        for conn in connections:
            # shutdown(), not just close(): the handler thread's makefile()
            # reader holds an io-ref, so close() alone defers the real FD
            # close and the connection would silently stay alive.
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=2.0)

    # ----------------------------------------------------------- plumbing
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._closed.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                break  # listener closed
            with self._lock:
                self._connections.append(conn)
            thread = threading.Thread(
                target=self._serve, args=(conn,), daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _monitor_loop(self) -> None:
        interval = max(0.02, min(0.5, self._store.lease_seconds / 4.0))
        while not self._closed.wait(interval):
            self._store.expire_leases()

    def _serve(self, conn: socket.socket) -> None:
        conn.settimeout(max(self._store.lease_seconds * 2.0, 10.0))
        write_lock = threading.Lock()
        worker: Optional[str] = None
        reader = conn.makefile("r", encoding="utf-8")
        try:
            while True:
                try:
                    message = _read(reader)
                except (OSError, ValueError):
                    break
                if message is None:
                    break
                try:
                    kind = message.get("type")
                    if kind == "hello":
                        if (
                            self.token is not None
                            and message.get("token") != self.token
                        ):
                            _send(conn, write_lock, {
                                "type": "reject",
                                "reason": "invalid or missing service token",
                            })
                            break
                        requested = str(message.get("worker") or "")
                        worker = self._store.claim_worker(
                            requested or "anon-worker"
                        )
                        _send(conn, write_lock, {
                            "type": "welcome",
                            "lease_seconds": self._store.lease_seconds,
                            "worker": worker,
                        })
                    elif worker is None:
                        continue  # no completed handshake: ignore the line
                    elif kind == "next":
                        _send(conn, write_lock, self._store.assign(worker))
                    elif kind in ("heartbeat", "result", "error",
                                  "checkpoint", "release"):
                        parsed = parse_task_id(message.get("task"))
                        if parsed is None:
                            continue  # corrupt or foreign task id; ignore
                        job_id, position = parsed
                        if kind == "heartbeat":
                            self._store.heartbeat(job_id, position, worker)
                        elif kind == "result":
                            self._store.complete(
                                job_id, position, worker, message["result"]
                            )
                        elif kind == "checkpoint":
                            self._store.checkpoint(
                                job_id, position, worker,
                                message.get("snapshot"),
                            )
                        elif kind == "release":
                            self._store.release(
                                job_id, position, worker,
                                message.get("snapshot"),
                            )
                        else:
                            self._store.error(
                                job_id, position, worker,
                                str(message.get("error")),
                            )
                except (AttributeError, KeyError, TypeError, ValueError):
                    # Structurally invalid message: drop the line, keep the
                    # worker's connection — killing the handler would cost a
                    # lease and an exclusion for one corrupt line.
                    continue
        except OSError:
            pass
        finally:
            with self._lock:
                try:
                    self._connections.remove(conn)
                except ValueError:
                    pass
            if worker is not None:
                self._store.drop_worker(worker)
            try:
                conn.close()
            except OSError:
                pass


class SweepService:
    """One ``repro serve`` daemon: JobStore + TCP plane + HTTP plane.

    ``journal_dir``/``cache_dir`` opt into durability: constructing the
    service on a killed daemon's directories replays the journal and
    resumes every live job before either listener opens.
    """

    def __init__(
        self,
        worker_host: str = "127.0.0.1",
        worker_port: int = 0,
        http_host: str = "127.0.0.1",
        http_port: int = 0,
        journal_dir: Optional[str] = None,
        cache_dir: Optional[str] = None,
        token: Optional[str] = None,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        checkpoint_every: Optional[int] = None,
    ) -> None:
        cache = ResultCache(cache_dir) if cache_dir is not None else None
        journal = (
            ServiceJournal(journal_dir) if journal_dir is not None else None
        )
        self.store = JobStore(
            cache=cache,
            journal=journal,
            lease_seconds=lease_seconds,
            max_attempts=max_attempts,
            checkpoint_every=checkpoint_every,
        )
        self.recovered_jobs = self.store.recover()
        self.broker = ServiceBroker(
            self.store, worker_host, worker_port, token=token
        )
        self.http = ServiceHTTPServer(
            self.store, http_host, http_port, token=token
        )
        self._started_at: Optional[float] = None

    def start(self) -> "SweepService":
        self.broker.start()
        try:
            self.http.start()
        except BaseException:
            self.broker.close()
            raise
        self._started_at = time.monotonic()
        return self

    def close(self) -> None:
        self.http.close()
        self.broker.close()
        self.store.close_journal()

    def __enter__(self) -> "SweepService":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @property
    def worker_address(self) -> Tuple[str, int]:
        return self.broker.address

    @property
    def http_url(self) -> str:
        host, port = self.http.address
        return f"http://{connect_host(host)}:{port}"

    def uptime_seconds(self) -> float:
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at


def run_service(
    bind: str = "127.0.0.1:0",
    http: str = "127.0.0.1:0",
    journal_dir: Optional[str] = None,
    cache_dir: Optional[str] = None,
    token: Optional[str] = None,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    checkpoint_every: Optional[int] = None,
) -> int:
    """Foreground driver behind ``repro serve``: run until SIGTERM/SIGINT.

    Prints greppable address lines to stderr on startup (the CLI smoke
    tests and ops scripts parse them) and a stats summary on shutdown.
    """
    import signal
    import sys

    worker_host, worker_port = parse_address(bind)
    http_host, http_port = parse_address(http)
    service = SweepService(
        worker_host=worker_host,
        worker_port=worker_port,
        http_host=http_host,
        http_port=http_port,
        journal_dir=journal_dir,
        cache_dir=cache_dir,
        token=token,
        lease_seconds=lease_seconds,
        max_attempts=max_attempts,
        checkpoint_every=checkpoint_every,
    ).start()
    host, port = service.worker_address
    print(
        f"serve: worker plane on {host}:{port} "
        f"(join: python -m repro worker --connect "
        f"{connect_host(host)}:{port} --redial 3600"
        f"{' --token <token>' if token else ''})",
        file=sys.stderr, flush=True,
    )
    print(f"serve: http api on {service.http_url}", file=sys.stderr, flush=True)
    if journal_dir is not None:
        print(
            f"serve: journal in {journal_dir} "
            f"(recovered {service.recovered_jobs} job(s))",
            file=sys.stderr, flush=True,
        )
    if cache_dir is not None:
        print(f"serve: result cache in {cache_dir}", file=sys.stderr, flush=True)
    stop = threading.Event()
    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, lambda *_: stop.set())
    try:
        while not stop.wait(0.5):
            pass
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
    stats: Dict[str, Any] = service.store.stats_snapshot()
    service_stats = stats["service"]
    print(
        f"serve: stopped after {service.uptime_seconds():.1f}s — "
        f"{service_stats['jobs_submitted']} job(s) submitted, "
        f"{service_stats['completed']} spec(s) completed, "
        f"{service_stats['short_circuited']} short-circuited, "
        f"{service_stats['coalesced']} coalesced",
        file=sys.stderr, flush=True,
    )
    return 0
