"""Contention-scenario sweeps: the non-paper grid behind ``repro run scenarios``.

Unlike the fig7-fig11 modules, this experiment does not reproduce a figure:
it sweeps the :mod:`~repro.workloads.contention_suite` scenarios over
cores x Table 2 configuration x **contention level** x **MAC backoff policy**
— the axes that matter for WNoC MAC behaviour (Abadal et al.'s MAC context
analysis; Mansoor et al.'s traffic-aware MAC) but that the paper's fixed
grid never varies.

Contention levels are named parameter presets per scenario
(:data:`CONTENTION_LEVELS`), so "low" and "high" mean the same thing across
scenarios: sparse synchronization with generous think time versus dense
bursts with skewed or serialized traffic.  The backoff axis rides on the
spec ``variant`` mechanism (``backoff=<kind>``,
:func:`~repro.runner.executor.backoff_variant`) and is only applied to
configurations with wireless hardware — a Baseline machine has no MAC to
ablate, so it appears once per grid row regardless of the backoff list.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.tables import format_table
from repro.errors import ConfigurationError
from repro.runner.executor import backoff_variant
from repro.runner.runner import Runner
from repro.runner.spec import DEFAULT_SEED, RunSpec, SweepSpec
from repro.workloads.contention_suite import scenario_names

#: Table 2 configurations that have a wireless MAC to sweep backoff over.
WIRELESS_CONFIGS = ("WiSyncNoT", "WiSync")

#: The default backoff kind baked into every configuration (see
#: :class:`repro.config.BackoffConfig`); selected with ``variant=None`` so
#: that default-policy specs stay cache-compatible with the other sweeps.
DEFAULT_BACKOFF = "broadcast_aware"

#: Named parameter presets: contention level -> scenario -> builder params.
CONTENTION_LEVELS: Dict[str, Dict[str, Dict[str, object]]] = {
    "low": {
        "pc_ring": {"items": 4, "think_cycles": 400},
        "rwlock": {"operations": 6, "write_fraction": 0.1, "think_cycles": 300},
        "work_steal": {"tasks_per_thread": 4, "task_cycles": 400, "seed_stride": 1},
        "barrier_storm": {
            "phases": 3, "storms_per_phase": 1, "compute_cycles": 600, "skew": 0.2,
        },
        "mixed_phases": {"phases": 3, "compute_cycles": 500},
    },
    "medium": {
        "pc_ring": {"items": 6, "think_cycles": 120},
        "rwlock": {"operations": 8, "write_fraction": 0.2, "think_cycles": 100},
        "work_steal": {"tasks_per_thread": 5, "task_cycles": 150, "seed_stride": 2},
        "barrier_storm": {
            "phases": 4, "storms_per_phase": 2, "compute_cycles": 200, "skew": 0.5,
        },
        "mixed_phases": {"phases": 4, "compute_cycles": 150},
    },
    "high": {
        "pc_ring": {"items": 8, "think_cycles": 30},
        "rwlock": {"operations": 10, "write_fraction": 0.5, "think_cycles": 30},
        "work_steal": {"tasks_per_thread": 6, "task_cycles": 60, "seed_stride": 4},
        "barrier_storm": {
            "phases": 4, "storms_per_phase": 3, "compute_cycles": 100, "skew": 1.0,
        },
        "mixed_phases": {"phases": 6, "compute_cycles": 80},
    },
}

DEFAULT_CORE_COUNTS = [16]
DEFAULT_CONFIGS = ["Baseline", "WiSync"]
DEFAULT_CONTENTION = ["low", "high"]
DEFAULT_BACKOFFS = [DEFAULT_BACKOFF]

#: Row key of the structured result table:
#: (scenario, contention level, core count, backoff kind).
ScenarioKey = Tuple[str, str, int, str]


def _axis(name: str, values: Optional[List], default: List) -> List:
    """Apply the default for an omitted sweep axis; reject an empty one.

    An explicitly empty axis (e.g. ``--backoffs ,`` on the CLI) would either
    crash on ``backoffs[0]`` or silently build an empty sweep — both worse
    than saying what is wrong.
    """
    if values is None:
        return default
    if not values:
        raise ConfigurationError(f"scenario sweep axis {name!r} must not be empty")
    return values


def contention_params(scenario: str, level: str) -> Dict[str, object]:
    """The parameter preset for ``scenario`` at contention ``level``."""
    if level not in CONTENTION_LEVELS:
        raise ConfigurationError(
            f"unknown contention level {level!r}; choices: {sorted(CONTENTION_LEVELS)}"
        )
    preset = CONTENTION_LEVELS[level]
    if scenario not in preset:
        raise ConfigurationError(
            f"no contention preset for scenario {scenario!r}; "
            f"known scenarios: {sorted(preset)}"
        )
    return dict(preset[scenario])


def _spec_for(
    scenario: str, level: str, cores: int, config: str, backoff: str, seed: int
) -> RunSpec:
    variant = None if backoff == DEFAULT_BACKOFF else backoff_variant(backoff)
    return RunSpec(
        workload=scenario,
        params=tuple(contention_params(scenario, level).items()),
        config=config,
        num_cores=cores,
        seed=seed,
        variant=variant,
    )


def scenario_sweep(
    scenarios: Optional[List[str]] = None,
    core_counts: Optional[List[int]] = None,
    configs: Optional[List[str]] = None,
    contention: Optional[List[str]] = None,
    backoffs: Optional[List[str]] = None,
    seed: int = DEFAULT_SEED,
) -> SweepSpec:
    """The declarative contention grid.

    Wireless configurations get one spec per backoff kind; configurations
    without wireless hardware appear once per (scenario, level, cores) row —
    their MAC-free results are backoff-independent by construction.
    """
    scenarios = _axis("scenarios", scenarios, scenario_names())
    core_counts = _axis("core_counts", core_counts, DEFAULT_CORE_COUNTS)
    configs = _axis("configs", configs, DEFAULT_CONFIGS)
    contention = _axis("contention", contention, DEFAULT_CONTENTION)
    backoffs = _axis("backoffs", backoffs, DEFAULT_BACKOFFS)
    specs: List[RunSpec] = []
    for scenario in scenarios:
        for level in contention:
            for cores in core_counts:
                for config in configs:
                    kinds = backoffs if config in WIRELESS_CONFIGS else [backoffs[0]]
                    for kind in kinds:
                        effective = kind if config in WIRELESS_CONFIGS else DEFAULT_BACKOFF
                        specs.append(
                            _spec_for(scenario, level, cores, config, effective, seed)
                        )
    return SweepSpec(name="scenarios", specs=tuple(specs))


def run_scenarios(
    scenarios: Optional[List[str]] = None,
    core_counts: Optional[List[int]] = None,
    configs: Optional[List[str]] = None,
    contention: Optional[List[str]] = None,
    backoffs: Optional[List[str]] = None,
    runner: Optional[Runner] = None,
) -> Dict[ScenarioKey, Dict[str, float]]:
    """Total cycles keyed by (scenario, level, cores, backoff) then config.

    Configurations without a wireless MAC are repeated across the backoff
    rows of their grid point (one simulation serves every row), keeping each
    row a complete config-by-config comparison.
    """
    scenarios = _axis("scenarios", scenarios, scenario_names())
    core_counts = _axis("core_counts", core_counts, DEFAULT_CORE_COUNTS)
    configs = _axis("configs", configs, DEFAULT_CONFIGS)
    contention = _axis("contention", contention, DEFAULT_CONTENTION)
    backoffs = _axis("backoffs", backoffs, DEFAULT_BACKOFFS)
    sweep = scenario_sweep(scenarios, core_counts, configs, contention, backoffs)
    from repro.runner.runner import default_runner

    results = default_runner(runner).run(sweep).results
    table: Dict[ScenarioKey, Dict[str, float]] = {}
    for scenario in scenarios:
        for level in contention:
            for cores in core_counts:
                for kind in backoffs:
                    row: Dict[str, float] = {}
                    for config in configs:
                        effective = kind if config in WIRELESS_CONFIGS else DEFAULT_BACKOFF
                        spec = _spec_for(scenario, level, cores, config, effective, DEFAULT_SEED)
                        row[config] = float(results[spec].total_cycles)
                    table[(scenario, level, cores, kind)] = row
    return table


def format_scenarios(table: Dict[ScenarioKey, Dict[str, float]]) -> str:
    configs: List[str] = []
    for row in table.values():
        for label in row:
            if label not in configs:
                configs.append(label)
    headers = ["scenario", "contention", "cores", "backoff"] + configs
    rows = [
        list(key) + [row.get(label, float("nan")) for label in configs]
        for key, row in sorted(table.items())
    ]
    return format_table(
        headers, rows, title="Contention scenarios: total cycles"
    )
