"""Contention-scenario sweeps: the non-paper grid behind ``repro run scenarios``.

Unlike the fig7-fig11 modules, this experiment does not reproduce a figure:
it sweeps the :mod:`~repro.workloads.contention_suite` scenarios over
cores x Table 2 configuration x **contention level** x **MAC backoff policy**
— the axes that matter for WNoC MAC behaviour (Abadal et al.'s MAC context
analysis; Mansoor et al.'s traffic-aware MAC) but that the paper's fixed
grid never varies.

Contention levels are named parameter presets per scenario
(:data:`CONTENTION_LEVELS`), so "low" and "high" mean the same thing across
scenarios: sparse synchronization with generous think time versus dense
bursts with skewed or serialized traffic.  The backoff axis rides on the
spec ``variant`` mechanism (``backoff=<kind>``,
:func:`~repro.runner.executor.backoff_variant`) and is only applied to
configurations with wireless hardware — a Baseline machine has no MAC to
ablate, so it appears once per grid row regardless of the backoff list.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.frame import MetricFrame, Row
from repro.analysis.report import Report
from repro.errors import ConfigurationError
from repro.runner.executor import backoff_variant
from repro.runner.runner import Runner
from repro.runner.spec import DEFAULT_SEED, RunSpec, SweepSpec
from repro.workloads.contention_suite import scenario_names

#: Table 2 configurations that have a wireless MAC to sweep backoff over.
WIRELESS_CONFIGS = ("WiSyncNoT", "WiSync")

#: The default backoff kind baked into every configuration (see
#: :class:`repro.config.BackoffConfig`); selected with ``variant=None`` so
#: that default-policy specs stay cache-compatible with the other sweeps.
DEFAULT_BACKOFF = "broadcast_aware"

#: Named parameter presets: contention level -> scenario -> builder params.
CONTENTION_LEVELS: Dict[str, Dict[str, Dict[str, object]]] = {
    "low": {
        "pc_ring": {"items": 4, "think_cycles": 400},
        "rwlock": {"operations": 6, "write_fraction": 0.1, "think_cycles": 300},
        "work_steal": {"tasks_per_thread": 4, "task_cycles": 400, "seed_stride": 1},
        "barrier_storm": {
            "phases": 3, "storms_per_phase": 1, "compute_cycles": 600, "skew": 0.2,
        },
        "mixed_phases": {"phases": 3, "compute_cycles": 500},
    },
    "medium": {
        "pc_ring": {"items": 6, "think_cycles": 120},
        "rwlock": {"operations": 8, "write_fraction": 0.2, "think_cycles": 100},
        "work_steal": {"tasks_per_thread": 5, "task_cycles": 150, "seed_stride": 2},
        "barrier_storm": {
            "phases": 4, "storms_per_phase": 2, "compute_cycles": 200, "skew": 0.5,
        },
        "mixed_phases": {"phases": 4, "compute_cycles": 150},
    },
    "high": {
        "pc_ring": {"items": 8, "think_cycles": 30},
        "rwlock": {"operations": 10, "write_fraction": 0.5, "think_cycles": 30},
        "work_steal": {"tasks_per_thread": 6, "task_cycles": 60, "seed_stride": 4},
        "barrier_storm": {
            "phases": 4, "storms_per_phase": 3, "compute_cycles": 100, "skew": 1.0,
        },
        "mixed_phases": {"phases": 6, "compute_cycles": 80},
    },
}

DEFAULT_CORE_COUNTS = [16]
DEFAULT_CONFIGS = ["Baseline", "WiSync"]
DEFAULT_CONTENTION = ["low", "high"]
DEFAULT_BACKOFFS = [DEFAULT_BACKOFF]

#: Row key of the structured result table:
#: (scenario, contention level, core count, backoff kind).
ScenarioKey = Tuple[str, str, int, str]


def _axis(name: str, values: Optional[List], default: List) -> List:
    """Apply the default for an omitted sweep axis; reject an empty one.

    An explicitly empty axis (e.g. ``--backoffs ,`` on the CLI) would either
    crash on ``backoffs[0]`` or silently build an empty sweep — both worse
    than saying what is wrong.
    """
    if values is None:
        return default
    if not values:
        raise ConfigurationError(f"scenario sweep axis {name!r} must not be empty")
    return values


def contention_params(scenario: str, level: str) -> Dict[str, object]:
    """The parameter preset for ``scenario`` at contention ``level``."""
    if level not in CONTENTION_LEVELS:
        raise ConfigurationError(
            f"unknown contention level {level!r}; choices: {sorted(CONTENTION_LEVELS)}"
        )
    preset = CONTENTION_LEVELS[level]
    if scenario not in preset:
        raise ConfigurationError(
            f"no contention preset for scenario {scenario!r}; "
            f"known scenarios: {sorted(preset)}"
        )
    return dict(preset[scenario])


def _spec_for(
    scenario: str, level: str, cores: int, config: str, backoff: str, seed: int
) -> RunSpec:
    variant = None if backoff == DEFAULT_BACKOFF else backoff_variant(backoff)
    return RunSpec(
        workload=scenario,
        params=tuple(contention_params(scenario, level).items()),
        config=config,
        num_cores=cores,
        seed=seed,
        variant=variant,
    )


def scenario_sweep(
    scenarios: Optional[List[str]] = None,
    core_counts: Optional[List[int]] = None,
    configs: Optional[List[str]] = None,
    contention: Optional[List[str]] = None,
    backoffs: Optional[List[str]] = None,
    seed: int = DEFAULT_SEED,
) -> SweepSpec:
    """The declarative contention grid.

    Wireless configurations get one spec per backoff kind; configurations
    without wireless hardware appear once per (scenario, level, cores) row —
    their MAC-free results are backoff-independent by construction.
    """
    scenarios = _axis("scenarios", scenarios, scenario_names())
    core_counts = _axis("core_counts", core_counts, DEFAULT_CORE_COUNTS)
    configs = _axis("configs", configs, DEFAULT_CONFIGS)
    contention = _axis("contention", contention, DEFAULT_CONTENTION)
    backoffs = _axis("backoffs", backoffs, DEFAULT_BACKOFFS)
    specs: List[RunSpec] = []
    for scenario in scenarios:
        for level in contention:
            for cores in core_counts:
                for config in configs:
                    kinds = backoffs if config in WIRELESS_CONFIGS else [backoffs[0]]
                    for kind in kinds:
                        effective = kind if config in WIRELESS_CONFIGS else DEFAULT_BACKOFF
                        specs.append(
                            _spec_for(scenario, level, cores, config, effective, seed)
                        )
    return SweepSpec(name="scenarios", specs=tuple(specs))


#: Contention label for parameter sets that match no preset; a real string
#: (not None) so the level stays sortable/renderable alongside low/high.
CUSTOM_CONTENTION = "custom"


def contention_level_of(row: Row) -> str:
    """Reverse-map a frame row's parameter values onto a contention level.

    Specs carry the preset's *parameters*, not the level name; a row whose
    parameters exactly match the workload's preset at some level gets that
    level's name back (custom parameter sets map to
    :data:`CUSTOM_CONTENTION`).  A parameter whose name collided with a
    metric column lives under ``param_<name>`` (rwlock's ``operations`` knob
    versus the completed-operations count).
    """

    def param(row: Row, knob: str):
        prefixed = f"param_{knob}"
        return row[prefixed] if prefixed in row else row.get(knob)

    for level, presets in CONTENTION_LEVELS.items():
        preset = presets.get(row["workload"])
        if preset is not None and all(
            param(row, knob) == value for knob, value in preset.items()
        ):
            return level
    return CUSTOM_CONTENTION


def scenario_frame(frame: MetricFrame, backoffs: Optional[List[str]] = None) -> MetricFrame:
    """Analysis view of a scenario sweep: contention level + per-op cost.

    Adds the ``contention`` dimension (reverse-mapped from the parameter
    presets), replicates MAC-free rows across the requested ``backoffs``
    (one Baseline simulation serves every backoff row of its grid point),
    and derives ``cycles_per_op`` — the normalization that makes low/high
    contention rows comparable (their total work differs by construction).
    """
    backoffs = backoffs if backoffs is not None else list(DEFAULT_BACKOFFS)
    frame = frame.derive("contention", contention_level_of, type="str", kind="dim")
    frame = frame.explode(
        "backoff", backoffs, where=lambda row: row["config"] not in WIRELESS_CONFIGS
    )
    return frame.cycles_per_op(default=None)


def scenarios_report(
    configs: Optional[List[str]] = None, values: str = "cycles_per_op"
) -> Report:
    """Declarative presentation of the contention grid.

    The default metric is ``cycles_per_op``; the legacy total-cycles view
    passes ``values="total_cycles_f"``.
    """
    titles = {
        "cycles_per_op": "Contention scenarios: cycles per completed operation",
        "total_cycles_f": "Contention scenarios: total cycles",
    }
    return Report(
        name="scenarios",
        title=titles.get(values, f"Contention scenarios: {values}"),
        index=("workload", "contention", "cores", "backoff"),
        index_headers=("scenario", "contention", "cores", "backoff"),
        series="config",
        values=values,
        series_order=tuple(configs) if configs is not None else None,
        series_sort=False,
        filter_present=False,
        sort_rows=True,
    )


def run_scenarios(
    scenarios: Optional[List[str]] = None,
    core_counts: Optional[List[int]] = None,
    configs: Optional[List[str]] = None,
    contention: Optional[List[str]] = None,
    backoffs: Optional[List[str]] = None,
    runner: Optional[Runner] = None,
) -> Dict[ScenarioKey, Dict[str, float]]:
    """Total cycles keyed by (scenario, level, cores, backoff) then config.

    Configurations without a wireless MAC are repeated across the backoff
    rows of their grid point (one simulation serves every row), keeping each
    row a complete config-by-config comparison.
    """
    scenarios = _axis("scenarios", scenarios, scenario_names())
    core_counts = _axis("core_counts", core_counts, DEFAULT_CORE_COUNTS)
    configs = _axis("configs", configs, DEFAULT_CONFIGS)
    contention = _axis("contention", contention, DEFAULT_CONTENTION)
    backoffs = _axis("backoffs", backoffs, DEFAULT_BACKOFFS)
    sweep = scenario_sweep(scenarios, core_counts, configs, contention, backoffs)
    from repro.runner.runner import default_runner

    frame = scenario_frame(default_runner(runner).run(sweep).frame(), backoffs)
    frame = frame.derive("total_cycles_f", lambda row: float(row["cycles"]))
    return scenarios_report(configs, values="total_cycles_f").table(frame, prepared=True)


def format_scenarios(table: Dict[ScenarioKey, Dict[str, float]]) -> str:
    return scenarios_report(values="total_cycles_f").render_table(table)
