"""Figure 7: TightLoop execution time versus core count.

The paper sweeps 16-256 cores and reports cycles per loop iteration for the
four configurations on a logarithmic axis.  The Baseline curve grows by
orders of magnitude with the core count while WiSync stays nearly flat
thanks to the Tone channel.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.report import Report, ratio_of
from repro.experiments.common import CONFIG_BUILDERS, run_frame, specs_over_configs
from repro.runner.runner import Runner
from repro.runner.spec import SweepSpec

#: Core counts of the paper's sweep.  256-core Baseline simulations are slow
#: in pure Python, so the default benchmark sweep stops at 128; pass the full
#: list explicitly to regenerate the entire figure.
DEFAULT_CORE_COUNTS = [16, 32, 64, 128]
PAPER_CORE_COUNTS = [16, 32, 64, 128, 256]

#: Declarative presentation: cycles/iteration per core count and config.
FIG7_REPORT = Report(
    name="fig7",
    title="Figure 7: TightLoop cycles/iteration",
    index=("cores",),
    series="config",
    values="cycles_per_iteration",
    transforms=(ratio_of("cycles_per_iteration", "cycles", "iterations"),),
    series_order=tuple(CONFIG_BUILDERS),
    sort_rows=True,
)


def fig7_sweep(
    core_counts: Optional[List[int]] = None,
    iterations: int = 5,
    configs: Optional[List[str]] = None,
    seed: int = 2016,
) -> SweepSpec:
    """The declarative grid behind Figure 7."""
    core_counts = core_counts if core_counts is not None else DEFAULT_CORE_COUNTS
    specs = [
        spec
        for cores in core_counts
        for spec in specs_over_configs(
            "tightloop", {"iterations": iterations}, cores, configs, seed
        )
    ]
    return SweepSpec(name="fig7", specs=tuple(specs))


def run_fig7(
    core_counts: Optional[List[int]] = None,
    iterations: int = 5,
    configs: Optional[List[str]] = None,
    runner: Optional[Runner] = None,
) -> Dict[int, Dict[str, float]]:
    """Cycles per TightLoop iteration, keyed by core count then configuration."""
    frame = run_frame(fig7_sweep(core_counts, iterations, configs), runner)
    return FIG7_REPORT.table(frame)


def format_fig7(series: Dict[int, Dict[str, float]]) -> str:
    return FIG7_REPORT.render_table(series)
