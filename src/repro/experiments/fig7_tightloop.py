"""Figure 7: TightLoop execution time versus core count.

The paper sweeps 16-256 cores and reports cycles per loop iteration for the
four configurations on a logarithmic axis.  The Baseline curve grows by
orders of magnitude with the core count while WiSync stays nearly flat
thanks to the Tone channel.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.tables import format_table
from repro.experiments.common import CONFIG_BUILDERS, run_workload_on_configs
from repro.workloads.tightloop import build_tightloop

#: Core counts of the paper's sweep.  256-core Baseline simulations are slow
#: in pure Python, so the default benchmark sweep stops at 128; pass the full
#: list explicitly to regenerate the entire figure.
DEFAULT_CORE_COUNTS = [16, 32, 64, 128]
PAPER_CORE_COUNTS = [16, 32, 64, 128, 256]


def run_fig7(
    core_counts: Optional[List[int]] = None,
    iterations: int = 5,
    configs: Optional[List[str]] = None,
) -> Dict[int, Dict[str, float]]:
    """Cycles per TightLoop iteration, keyed by core count then configuration."""
    core_counts = core_counts if core_counts is not None else DEFAULT_CORE_COUNTS
    series: Dict[int, Dict[str, float]] = {}
    for cores in core_counts:
        results = run_workload_on_configs(
            lambda machine: build_tightloop(machine, iterations=iterations),
            num_cores=cores,
            configs=configs,
        )
        series[cores] = {
            label: result.total_cycles / iterations for label, result in results.items()
        }
    return series


def format_fig7(series: Dict[int, Dict[str, float]]) -> str:
    labels = [label for label in CONFIG_BUILDERS if any(label in row for row in series.values())]
    headers = ["cores"] + labels
    rows = [[cores] + [series[cores].get(label, float("nan")) for label in labels]
            for cores in sorted(series)]
    return format_table(headers, rows, title="Figure 7: TightLoop cycles/iteration")
