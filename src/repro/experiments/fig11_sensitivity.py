"""Figure 11 / Table 6: sensitivity to memory and network latencies.

Runs the application proxies on the five Table 6 variants (Default, SlowNet,
SlowNet+L2, FastNet, SlowBMEM) and reports the geometric-mean speedup of
Baseline+, WiSyncNoT, and WiSync over Baseline for each variant, at 64 cores.
WiSync's advantage grows with a slower wired network and is essentially
insensitive to the BM latency.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.report import Report, group_by, speedup_over, where
from repro.experiments.common import CONFIG_BUILDERS, run_frame, specs_over_configs
from repro.machine.configs import sensitivity_variants
from repro.runner.runner import Runner
from repro.runner.spec import SweepSpec

#: Representative application subset used by default to keep the sweep fast;
#: pass ``apps=application_names()`` for the full Figure 11 input set.
DEFAULT_SENSITIVITY_APPS = [
    "streamcluster", "ocean-c", "raytrace", "radiosity", "water-ns",
    "barnes", "blackscholes", "fft",
]

#: Fixed comparison columns (fig11 always runs all four configurations).
FIG11_CONFIGS = ("Baseline+", "WiSyncNoT", "WiSync")

#: Declarative presentation: per-app speedups over Baseline within each
#: Table 6 variant, geomean-aggregated per (variant, config).
FIG11_REPORT = Report(
    name="fig11",
    title="Figure 11: geometric-mean speedup over Baseline per Table 6 variant",
    index=("variant",),
    series="config",
    values="speedup_gm",
    transforms=(
        speedup_over("Baseline"),
        where(config=FIG11_CONFIGS),
        group_by(("variant", "config"), speedup_gm=("speedup", "geomean")),
    ),
    series_order=FIG11_CONFIGS,
    filter_present=False,
)


def variant_names(num_cores: int = 64) -> List[str]:
    """The Table 6 variant names, in the paper's order."""
    return list(sensitivity_variants(CONFIG_BUILDERS["Baseline"](num_cores=num_cores)))


def fig11_sweep(
    apps: Optional[List[str]] = None,
    num_cores: int = 64,
    phase_scale: float = 0.5,
    variants: Optional[List[str]] = None,
    seed: int = 2016,
) -> SweepSpec:
    """The declarative grid behind Figure 11 (all four configs per variant)."""
    apps = apps if apps is not None else DEFAULT_SENSITIVITY_APPS
    names = variants if variants is not None else variant_names(num_cores)
    specs = [
        spec
        for variant in names
        for app in apps
        for spec in specs_over_configs(
            "application",
            {"app": app, "phase_scale": phase_scale},
            num_cores,
            configs=None,
            seed=seed,
            variant=variant,
        )
    ]
    return SweepSpec(name="fig11", specs=tuple(specs))


def run_fig11(
    apps: Optional[List[str]] = None,
    num_cores: int = 64,
    phase_scale: float = 0.5,
    variants: Optional[List[str]] = None,
    runner: Optional[Runner] = None,
) -> Dict[str, Dict[str, float]]:
    """Geometric-mean speedups over Baseline, keyed by variant then config."""
    frame = run_frame(fig11_sweep(apps, num_cores, phase_scale, variants), runner)
    return FIG11_REPORT.table(frame)


def format_fig11(table: Dict[str, Dict[str, float]]) -> str:
    return FIG11_REPORT.render_table(table)
