"""Figure 11 / Table 6: sensitivity to memory and network latencies.

Runs the application proxies on the five Table 6 variants (Default, SlowNet,
SlowNet+L2, FastNet, SlowBMEM) and reports the geometric-mean speedup of
Baseline+, WiSyncNoT, and WiSync over Baseline for each variant, at 64 cores.
WiSync's advantage grows with a slower wired network and is essentially
insensitive to the BM latency.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.tables import format_table
from repro.experiments.common import CONFIG_BUILDERS, run_sweep, specs_over_configs
from repro.machine.configs import sensitivity_variants
from repro.runner.runner import Runner
from repro.runner.spec import SweepSpec
from repro.sim.stats import geometric_mean

#: Representative application subset used by default to keep the sweep fast;
#: pass ``apps=application_names()`` for the full Figure 11 input set.
DEFAULT_SENSITIVITY_APPS = [
    "streamcluster", "ocean-c", "raytrace", "radiosity", "water-ns",
    "barnes", "blackscholes", "fft",
]


def variant_names(num_cores: int = 64) -> List[str]:
    """The Table 6 variant names, in the paper's order."""
    return list(sensitivity_variants(CONFIG_BUILDERS["Baseline"](num_cores=num_cores)))


def fig11_sweep(
    apps: Optional[List[str]] = None,
    num_cores: int = 64,
    phase_scale: float = 0.5,
    variants: Optional[List[str]] = None,
    seed: int = 2016,
) -> SweepSpec:
    """The declarative grid behind Figure 11 (all four configs per variant)."""
    apps = apps if apps is not None else DEFAULT_SENSITIVITY_APPS
    names = variants if variants is not None else variant_names(num_cores)
    specs = [
        spec
        for variant in names
        for app in apps
        for spec in specs_over_configs(
            "application",
            {"app": app, "phase_scale": phase_scale},
            num_cores,
            configs=None,
            seed=seed,
            variant=variant,
        )
    ]
    return SweepSpec(name="fig11", specs=tuple(specs))


def run_fig11(
    apps: Optional[List[str]] = None,
    num_cores: int = 64,
    phase_scale: float = 0.5,
    variants: Optional[List[str]] = None,
    runner: Optional[Runner] = None,
) -> Dict[str, Dict[str, float]]:
    """Geometric-mean speedups over Baseline, keyed by variant then config."""
    apps = apps if apps is not None else DEFAULT_SENSITIVITY_APPS
    names = variants if variants is not None else variant_names(num_cores)
    sweep = fig11_sweep(apps, num_cores, phase_scale, names)
    results = run_sweep(sweep, runner)
    # cycles[(variant, app)][config] -> total cycles
    cycles: Dict[tuple, Dict[str, int]] = {}
    for spec in sweep:
        app = spec.params_dict()["app"]
        cycles.setdefault((spec.variant, app), {})[spec.config] = results[spec].total_cycles
    table: Dict[str, Dict[str, float]] = {}
    for variant in names:
        speedups: Dict[str, List[float]] = {"Baseline+": [], "WiSyncNoT": [], "WiSync": []}
        for app in apps:
            point = cycles[(variant, app)]
            for label in speedups:
                speedups[label].append(point["Baseline"] / point[label])
        table[variant] = {
            label: geometric_mean(values) for label, values in speedups.items()
        }
    return table


def format_fig11(table: Dict[str, Dict[str, float]]) -> str:
    labels = ["Baseline+", "WiSyncNoT", "WiSync"]
    headers = ["variant"] + labels
    rows = [[variant] + [cols.get(label, float("nan")) for label in labels]
            for variant, cols in table.items()]
    return format_table(headers, rows,
                        title="Figure 11: geometric-mean speedup over Baseline per Table 6 variant")
