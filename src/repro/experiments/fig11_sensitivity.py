"""Figure 11 / Table 6: sensitivity to memory and network latencies.

Runs the application proxies on the five Table 6 variants (Default, SlowNet,
SlowNet+L2, FastNet, SlowBMEM) and reports the geometric-mean speedup of
Baseline+, WiSyncNoT, and WiSync over Baseline for each variant, at 64 cores.
WiSync's advantage grows with a slower wired network and is essentially
insensitive to the BM latency.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from repro.analysis.tables import format_table
from repro.experiments.common import CONFIG_BUILDERS
from repro.machine.configs import sensitivity_variants
from repro.machine.manycore import Manycore
from repro.sim.stats import geometric_mean
from repro.workloads.synthetic_apps import application_names, build_application, profile_by_name

#: Representative application subset used by default to keep the sweep fast;
#: pass ``apps=application_names()`` for the full Figure 11 input set.
DEFAULT_SENSITIVITY_APPS = [
    "streamcluster", "ocean-c", "raytrace", "radiosity", "water-ns",
    "barnes", "blackscholes", "fft",
]


def run_fig11(
    apps: Optional[List[str]] = None,
    num_cores: int = 64,
    phase_scale: float = 0.5,
    variants: Optional[List[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Geometric-mean speedups over Baseline, keyed by variant then config."""
    apps = apps if apps is not None else DEFAULT_SENSITIVITY_APPS
    table: Dict[str, Dict[str, float]] = {}
    all_variants = sensitivity_variants(CONFIG_BUILDERS["Baseline"](num_cores=num_cores))
    names = variants if variants is not None else list(all_variants)
    for variant in names:
        speedups: Dict[str, List[float]] = {"Baseline+": [], "WiSyncNoT": [], "WiSync": []}
        for app in apps:
            profile = profile_by_name(app)
            cycles: Dict[str, int] = {}
            for label, builder in CONFIG_BUILDERS.items():
                base_config = builder(num_cores=num_cores)
                variant_config = sensitivity_variants(base_config)[variant]
                machine = Manycore(variant_config)
                handle = build_application(machine, profile, phase_scale=phase_scale)
                cycles[label] = handle.run().total_cycles
            for label in speedups:
                speedups[label].append(cycles["Baseline"] / cycles[label])
        table[variant] = {
            label: geometric_mean(values) for label, values in speedups.items()
        }
    return table


def format_fig11(table: Dict[str, Dict[str, float]]) -> str:
    labels = ["Baseline+", "WiSyncNoT", "WiSync"]
    headers = ["variant"] + labels
    rows = [[variant] + [cols.get(label, float("nan")) for label in labels]
            for variant, cols in table.items()]
    return format_table(headers, rows,
                        title="Figure 11: geometric-mean speedup over Baseline per Table 6 variant")
