"""Figure 8: Livermore loops 2, 3 and 6 versus vector length.

Six panels in the paper: loops 2/3/6 at 64 cores (top) and 128 cores
(bottom), execution time versus vector length.  The gains of the WiSync
configurations are largest at small vector lengths, where barrier overhead
dominates, and shrink as the computation grows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.tables import format_table
from repro.experiments.common import CONFIG_BUILDERS, run_workload_on_configs
from repro.workloads.livermore import LivermoreLoop, build_livermore_loop

#: Vector lengths used by default (a subsample of the paper's sweep).
DEFAULT_VECTOR_LENGTHS = {
    LivermoreLoop.ICCG: [16, 256, 4096],
    LivermoreLoop.INNER_PRODUCT: [16, 256, 4096],
    LivermoreLoop.LINEAR_RECURRENCE: [16, 128, 1024],
}
PAPER_VECTOR_LENGTHS = {
    LivermoreLoop.ICCG: [16, 64, 256, 1024, 4096, 16384],
    LivermoreLoop.INNER_PRODUCT: [16, 64, 256, 1024, 4096, 16384],
    LivermoreLoop.LINEAR_RECURRENCE: [16, 32, 64, 128, 256, 512, 1024, 2048],
}


def run_fig8(
    loops: Optional[List[LivermoreLoop]] = None,
    core_counts: Optional[List[int]] = None,
    vector_lengths: Optional[Dict[LivermoreLoop, List[int]]] = None,
    repetitions: int = 2,
    configs: Optional[List[str]] = None,
) -> Dict[Tuple[int, int, int], Dict[str, float]]:
    """Execution time keyed by ``(loop, cores, vector_length)`` then config."""
    loops = loops if loops is not None else list(LivermoreLoop)
    core_counts = core_counts if core_counts is not None else [64]
    vector_lengths = vector_lengths if vector_lengths is not None else DEFAULT_VECTOR_LENGTHS
    series: Dict[Tuple[int, int, int], Dict[str, float]] = {}
    for loop in loops:
        for cores in core_counts:
            for length in vector_lengths[loop]:
                results = run_workload_on_configs(
                    lambda machine, _loop=loop, _len=length: build_livermore_loop(
                        machine, _loop, _len, repetitions=repetitions
                    ),
                    num_cores=cores,
                    configs=configs,
                )
                series[(int(loop), cores, length)] = {
                    label: float(result.total_cycles) for label, result in results.items()
                }
    return series


def format_fig8(series: Dict[Tuple[int, int, int], Dict[str, float]]) -> str:
    labels = [label for label in CONFIG_BUILDERS
              if any(label in row for row in series.values())]
    headers = ["loop", "cores", "vector_len"] + labels
    rows = []
    for (loop, cores, length) in sorted(series):
        row = [loop, cores, length]
        row.extend(series[(loop, cores, length)].get(label, float("nan")) for label in labels)
        rows.append(row)
    return format_table(headers, rows, title="Figure 8: Livermore loop execution time (cycles)")
