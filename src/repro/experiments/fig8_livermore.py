"""Figure 8: Livermore loops 2, 3 and 6 versus vector length.

Six panels in the paper: loops 2/3/6 at 64 cores (top) and 128 cores
(bottom), execution time versus vector length.  The gains of the WiSync
configurations are largest at small vector lengths, where barrier overhead
dominates, and shrink as the computation grows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.report import Report, derive
from repro.experiments.common import CONFIG_BUILDERS, run_frame, specs_over_configs
from repro.runner.runner import Runner
from repro.runner.spec import SweepSpec
from repro.workloads.livermore import LivermoreLoop

#: Vector lengths used by default (a subsample of the paper's sweep).
DEFAULT_VECTOR_LENGTHS = {
    LivermoreLoop.ICCG: [16, 256, 4096],
    LivermoreLoop.INNER_PRODUCT: [16, 256, 4096],
    LivermoreLoop.LINEAR_RECURRENCE: [16, 128, 1024],
}
PAPER_VECTOR_LENGTHS = {
    LivermoreLoop.ICCG: [16, 64, 256, 1024, 4096, 16384],
    LivermoreLoop.INNER_PRODUCT: [16, 64, 256, 1024, 4096, 16384],
    LivermoreLoop.LINEAR_RECURRENCE: [16, 32, 64, 128, 256, 512, 1024, 2048],
}

#: Declarative presentation: execution time per (loop, cores, vector length).
FIG8_REPORT = Report(
    name="fig8",
    title="Figure 8: Livermore loop execution time (cycles)",
    index=("loop", "cores", "vector_length"),
    index_headers=("loop", "cores", "vector_len"),
    series="config",
    values="total_cycles_f",
    transforms=(derive("total_cycles_f", lambda row: float(row["cycles"])),),
    series_order=tuple(CONFIG_BUILDERS),
    sort_rows=True,
)


def fig8_sweep(
    loops: Optional[List[LivermoreLoop]] = None,
    core_counts: Optional[List[int]] = None,
    vector_lengths: Optional[Dict[LivermoreLoop, List[int]]] = None,
    repetitions: int = 2,
    configs: Optional[List[str]] = None,
    seed: int = 2016,
) -> SweepSpec:
    """The declarative grid behind Figure 8."""
    loops = loops if loops is not None else list(LivermoreLoop)
    core_counts = core_counts if core_counts is not None else [64]
    vector_lengths = vector_lengths if vector_lengths is not None else DEFAULT_VECTOR_LENGTHS
    specs = [
        spec
        for loop in loops
        for cores in core_counts
        for length in vector_lengths[LivermoreLoop(loop)]
        for spec in specs_over_configs(
            "livermore",
            {"loop": int(loop), "vector_length": length, "repetitions": repetitions},
            cores,
            configs,
            seed,
        )
    ]
    return SweepSpec(name="fig8", specs=tuple(specs))


def run_fig8(
    loops: Optional[List[LivermoreLoop]] = None,
    core_counts: Optional[List[int]] = None,
    vector_lengths: Optional[Dict[LivermoreLoop, List[int]]] = None,
    repetitions: int = 2,
    configs: Optional[List[str]] = None,
    runner: Optional[Runner] = None,
) -> Dict[Tuple[int, int, int], Dict[str, float]]:
    """Execution time keyed by ``(loop, cores, vector_length)`` then config."""
    frame = run_frame(
        fig8_sweep(loops, core_counts, vector_lengths, repetitions, configs), runner
    )
    return FIG8_REPORT.table(frame)


def format_fig8(series: Dict[Tuple[int, int, int], Dict[str, float]]) -> str:
    return FIG8_REPORT.render_table(series)
