"""Figure 8: Livermore loops 2, 3 and 6 versus vector length.

Six panels in the paper: loops 2/3/6 at 64 cores (top) and 128 cores
(bottom), execution time versus vector length.  The gains of the WiSync
configurations are largest at small vector lengths, where barrier overhead
dominates, and shrink as the computation grows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.tables import format_table
from repro.experiments.common import CONFIG_BUILDERS, run_sweep, specs_over_configs
from repro.runner.runner import Runner
from repro.runner.spec import SweepSpec
from repro.workloads.livermore import LivermoreLoop

#: Vector lengths used by default (a subsample of the paper's sweep).
DEFAULT_VECTOR_LENGTHS = {
    LivermoreLoop.ICCG: [16, 256, 4096],
    LivermoreLoop.INNER_PRODUCT: [16, 256, 4096],
    LivermoreLoop.LINEAR_RECURRENCE: [16, 128, 1024],
}
PAPER_VECTOR_LENGTHS = {
    LivermoreLoop.ICCG: [16, 64, 256, 1024, 4096, 16384],
    LivermoreLoop.INNER_PRODUCT: [16, 64, 256, 1024, 4096, 16384],
    LivermoreLoop.LINEAR_RECURRENCE: [16, 32, 64, 128, 256, 512, 1024, 2048],
}


def fig8_sweep(
    loops: Optional[List[LivermoreLoop]] = None,
    core_counts: Optional[List[int]] = None,
    vector_lengths: Optional[Dict[LivermoreLoop, List[int]]] = None,
    repetitions: int = 2,
    configs: Optional[List[str]] = None,
    seed: int = 2016,
) -> SweepSpec:
    """The declarative grid behind Figure 8."""
    loops = loops if loops is not None else list(LivermoreLoop)
    core_counts = core_counts if core_counts is not None else [64]
    vector_lengths = vector_lengths if vector_lengths is not None else DEFAULT_VECTOR_LENGTHS
    specs = [
        spec
        for loop in loops
        for cores in core_counts
        for length in vector_lengths[LivermoreLoop(loop)]
        for spec in specs_over_configs(
            "livermore",
            {"loop": int(loop), "vector_length": length, "repetitions": repetitions},
            cores,
            configs,
            seed,
        )
    ]
    return SweepSpec(name="fig8", specs=tuple(specs))


def run_fig8(
    loops: Optional[List[LivermoreLoop]] = None,
    core_counts: Optional[List[int]] = None,
    vector_lengths: Optional[Dict[LivermoreLoop, List[int]]] = None,
    repetitions: int = 2,
    configs: Optional[List[str]] = None,
    runner: Optional[Runner] = None,
) -> Dict[Tuple[int, int, int], Dict[str, float]]:
    """Execution time keyed by ``(loop, cores, vector_length)`` then config."""
    sweep = fig8_sweep(loops, core_counts, vector_lengths, repetitions, configs)
    results = run_sweep(sweep, runner)
    series: Dict[Tuple[int, int, int], Dict[str, float]] = {}
    for spec in sweep:
        params = spec.params_dict()
        key = (params["loop"], spec.num_cores, params["vector_length"])
        series.setdefault(key, {})[spec.config] = float(results[spec].total_cycles)
    return series


def format_fig8(series: Dict[Tuple[int, int, int], Dict[str, float]]) -> str:
    labels = [label for label in CONFIG_BUILDERS
              if any(label in row for row in series.values())]
    headers = ["loop", "cores", "vector_len"] + labels
    rows = []
    for (loop, cores, length) in sorted(series):
        row = [loop, cores, length]
        row.extend(series[(loop, cores, length)].get(label, float("nan")) for label in labels)
        rows.append(row)
    return format_table(headers, rows, title="Figure 8: Livermore loop execution time (cycles)")
