"""Figure 10: speedup over Baseline for PARSEC and SPLASH-2, 64 cores.

Runs every application proxy on Baseline, Baseline+, WiSyncNoT, and WiSync
and reports the per-application speedups over Baseline plus the arithmetic
and geometric means, like the two rightmost bar groups of Figure 10.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.report import AggregateRow, Report, speedup_over
from repro.experiments.common import CONFIG_BUILDERS, run_frame, specs_over_configs
from repro.machine.results import SimResult
from repro.runner.runner import Runner, default_runner
from repro.runner.spec import SweepSpec
from repro.workloads.synthetic_apps import application_names


def fig10_report(configs: Optional[List[str]] = None) -> Report:
    """Declarative presentation: per-app speedups plus mean/geoMean rows.

    The aggregate rows cover only the non-Baseline configurations — the
    Baseline column's speedup is 1.0 by construction and would only dilute
    the means.
    """
    configs = configs if configs is not None else list(CONFIG_BUILDERS)
    if "Baseline" not in configs:
        configs = ["Baseline"] + configs
    non_baseline = tuple(label for label in configs if label != "Baseline")
    return Report(
        name="fig10",
        title="Figure 10: speedup over Baseline (64 cores)",
        index=("app",),
        index_headers=("application",),
        series="config",
        values="speedup",
        transforms=(speedup_over("Baseline"),),
        aggregates=(
            AggregateRow("mean", "mean", series=non_baseline),
            AggregateRow("geoMean", "geomean", series=non_baseline),
        ),
        series_order=tuple(CONFIG_BUILDERS),
        drop_series=("Baseline",),
    )


FIG10_REPORT = fig10_report()


def fig10_sweep(
    apps: Optional[List[str]] = None,
    num_cores: int = 64,
    phase_scale: float = 1.0,
    configs: Optional[List[str]] = None,
    seed: int = 2016,
) -> SweepSpec:
    """The declarative grid behind Figure 10 (Baseline always included)."""
    apps = apps if apps is not None else application_names()
    configs = configs if configs is not None else list(CONFIG_BUILDERS)
    if "Baseline" not in configs:
        configs = ["Baseline"] + configs
    specs = [
        spec
        for app in apps
        for spec in specs_over_configs(
            "application", {"app": app, "phase_scale": phase_scale}, num_cores, configs, seed
        )
    ]
    return SweepSpec(name="fig10", specs=tuple(specs))


def run_fig10(
    apps: Optional[List[str]] = None,
    num_cores: int = 64,
    phase_scale: float = 1.0,
    configs: Optional[List[str]] = None,
    keep_results: bool = False,
    runner: Optional[Runner] = None,
) -> Dict[str, Dict[str, float]]:
    """Speedups over Baseline, keyed by application then configuration.

    Two synthetic rows, ``mean`` and ``geoMean``, aggregate over the selected
    applications.  With ``keep_results`` the raw :class:`SimResult` objects
    are attached under the ``_results`` key of each application entry (escape
    hatch for consumers that need full per-run stats, not just the frame).
    """
    sweep = fig10_sweep(apps, num_cores, phase_scale, configs)
    outcome = default_runner(runner).run(sweep)
    table = fig10_report(configs).table(outcome.frame())
    if keep_results:
        raw: Dict[str, Dict[str, SimResult]] = {}
        for spec, result in outcome:
            raw.setdefault(spec.params_dict()["app"], {})[spec.config] = result
        table["_results"] = raw  # type: ignore[assignment]
    return table


def format_fig10(table: Dict[str, Dict[str, float]]) -> str:
    rows_source = {name: cols for name, cols in table.items() if not name.startswith("_")}
    return FIG10_REPORT.render_table(rows_source)
