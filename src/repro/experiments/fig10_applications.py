"""Figure 10: speedup over Baseline for PARSEC and SPLASH-2, 64 cores.

Runs every application proxy on Baseline, Baseline+, WiSyncNoT, and WiSync
and reports the per-application speedups over Baseline plus the arithmetic
and geometric means, like the two rightmost bar groups of Figure 10.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.metrics import arithmetic_mean_speedup, geometric_mean_speedup
from repro.analysis.tables import format_table
from repro.experiments.common import CONFIG_BUILDERS, run_sweep, specs_over_configs
from repro.machine.results import SimResult
from repro.runner.runner import Runner
from repro.runner.spec import SweepSpec
from repro.workloads.synthetic_apps import application_names


def fig10_sweep(
    apps: Optional[List[str]] = None,
    num_cores: int = 64,
    phase_scale: float = 1.0,
    configs: Optional[List[str]] = None,
    seed: int = 2016,
) -> SweepSpec:
    """The declarative grid behind Figure 10 (Baseline always included)."""
    apps = apps if apps is not None else application_names()
    configs = configs if configs is not None else list(CONFIG_BUILDERS)
    if "Baseline" not in configs:
        configs = ["Baseline"] + configs
    specs = [
        spec
        for app in apps
        for spec in specs_over_configs(
            "application", {"app": app, "phase_scale": phase_scale}, num_cores, configs, seed
        )
    ]
    return SweepSpec(name="fig10", specs=tuple(specs))


def run_fig10(
    apps: Optional[List[str]] = None,
    num_cores: int = 64,
    phase_scale: float = 1.0,
    configs: Optional[List[str]] = None,
    keep_results: bool = False,
    runner: Optional[Runner] = None,
) -> Dict[str, Dict[str, float]]:
    """Speedups over Baseline, keyed by application then configuration.

    Two synthetic rows, ``mean`` and ``geoMean``, aggregate over the selected
    applications.  With ``keep_results`` the raw :class:`SimResult` objects
    are attached under the ``_results`` key of each application entry (used
    by the Table 5 utilization experiment to avoid re-running everything).
    """
    apps = apps if apps is not None else application_names()
    configs = configs if configs is not None else list(CONFIG_BUILDERS)
    if "Baseline" not in configs:
        configs = ["Baseline"] + configs
    sweep = fig10_sweep(apps, num_cores, phase_scale, configs)
    sweep_results = run_sweep(sweep, runner)
    table: Dict[str, Dict[str, float]] = {}
    raw: Dict[str, Dict[str, SimResult]] = {}
    for spec in sweep:
        app = spec.params_dict()["app"]
        raw.setdefault(app, {})[spec.config] = sweep_results[spec]
    for app in apps:
        base_cycles = raw[app]["Baseline"].total_cycles
        table[app] = {
            label: base_cycles / result.total_cycles for label, result in raw[app].items()
        }
    non_baseline = [label for label in configs if label != "Baseline"]
    table["mean"] = {
        label: arithmetic_mean_speedup(table[app][label] for app in apps) for label in non_baseline
    }
    table["geoMean"] = {
        label: geometric_mean_speedup(table[app][label] for app in apps) for label in non_baseline
    }
    if keep_results:
        table["_results"] = raw  # type: ignore[assignment]
    return table


def format_fig10(table: Dict[str, Dict[str, float]]) -> str:
    rows_source = {name: cols for name, cols in table.items() if not name.startswith("_")}
    labels = [label for label in CONFIG_BUILDERS
              if any(label in cols for cols in rows_source.values()) and label != "Baseline"]
    headers = ["application"] + labels
    rows = []
    for name, cols in rows_source.items():
        rows.append([name] + [cols.get(label, float("nan")) for label in labels])
    return format_table(headers, rows, title="Figure 10: speedup over Baseline (64 cores)")
