"""Figure 9: CAS throughput of the FIFO, LIFO and ADD kernels.

The paper plots successful CAS operations per 1000 cycles against the number
of instructions executed between consecutive CAS operations ("critical
section size"), for 64 and 128 cores, comparing WiSync (CAS on the BM) with
Baseline (CAS through the cache hierarchy).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.metrics import throughput_per_kcycle
from repro.analysis.report import Report, derive
from repro.experiments.common import run_frame, specs_over_configs
from repro.runner.runner import Runner
from repro.runner.spec import SweepSpec
from repro.workloads.cas_kernels import CasKernelKind

#: The paper only compares these two configurations for the CAS kernels,
#: because the kernels are lock-free and independent of the barrier/lock
#: implementation (Section 7.3).
CAS_CONFIGS = ["Baseline", "WiSync"]

DEFAULT_CRITICAL_SECTIONS = [4096, 256, 16]
PAPER_CRITICAL_SECTIONS = [65536, 16384, 4096, 1024, 256, 64, 16, 4]

#: Declarative presentation: successful CAS ops per kcycle.  The total
#: operation count is a *grid* quantity (successes per thread x cores), so it
#: derives from the row's own dimensions.
FIG9_REPORT = Report(
    name="fig9",
    title="Figure 9: CAS throughput per 1000 cycles",
    index=("kind", "cores", "critical_section_instructions"),
    index_headers=("kernel", "cores", "crit_section"),
    series="config",
    values="ops_per_kcycle",
    transforms=(
        derive(
            "ops_per_kcycle",
            lambda row: throughput_per_kcycle(
                row["successes_per_thread"] * row["cores"], row["cycles"]
            ),
        ),
    ),
    sort_rows=True,
)


def fig9_sweep(
    kinds: Optional[List[CasKernelKind]] = None,
    core_counts: Optional[List[int]] = None,
    critical_sections: Optional[List[int]] = None,
    successes_per_thread: int = 6,
    configs: Optional[List[str]] = None,
    seed: int = 2016,
) -> SweepSpec:
    """The declarative grid behind Figure 9."""
    kinds = kinds if kinds is not None else list(CasKernelKind)
    core_counts = core_counts if core_counts is not None else [64]
    critical_sections = (
        critical_sections if critical_sections is not None else DEFAULT_CRITICAL_SECTIONS
    )
    configs = configs if configs is not None else CAS_CONFIGS
    specs = [
        spec
        for kind in kinds
        for cores in core_counts
        for crit in critical_sections
        for spec in specs_over_configs(
            "cas",
            {
                "kind": CasKernelKind(kind).value,
                "critical_section_instructions": crit,
                "successes_per_thread": successes_per_thread,
            },
            cores,
            configs,
            seed,
        )
    ]
    return SweepSpec(name="fig9", specs=tuple(specs))


def run_fig9(
    kinds: Optional[List[CasKernelKind]] = None,
    core_counts: Optional[List[int]] = None,
    critical_sections: Optional[List[int]] = None,
    successes_per_thread: int = 6,
    configs: Optional[List[str]] = None,
    runner: Optional[Runner] = None,
) -> Dict[Tuple[str, int, int], Dict[str, float]]:
    """Throughput (CAS/1000 cycles) keyed by ``(kernel, cores, crit)`` then config."""
    frame = run_frame(
        fig9_sweep(kinds, core_counts, critical_sections, successes_per_thread, configs),
        runner,
    )
    return FIG9_REPORT.table(frame)


def format_fig9(series: Dict[Tuple[str, int, int], Dict[str, float]]) -> str:
    return FIG9_REPORT.render_table(series)
