"""Figure 9: CAS throughput of the FIFO, LIFO and ADD kernels.

The paper plots successful CAS operations per 1000 cycles against the number
of instructions executed between consecutive CAS operations ("critical
section size"), for 64 and 128 cores, comparing WiSync (CAS on the BM) with
Baseline (CAS through the cache hierarchy).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.metrics import throughput_per_kcycle
from repro.analysis.tables import format_table
from repro.experiments.common import run_sweep, specs_over_configs
from repro.runner.runner import Runner
from repro.runner.spec import SweepSpec
from repro.workloads.cas_kernels import CasKernelKind

#: The paper only compares these two configurations for the CAS kernels,
#: because the kernels are lock-free and independent of the barrier/lock
#: implementation (Section 7.3).
CAS_CONFIGS = ["Baseline", "WiSync"]

DEFAULT_CRITICAL_SECTIONS = [4096, 256, 16]
PAPER_CRITICAL_SECTIONS = [65536, 16384, 4096, 1024, 256, 64, 16, 4]


def fig9_sweep(
    kinds: Optional[List[CasKernelKind]] = None,
    core_counts: Optional[List[int]] = None,
    critical_sections: Optional[List[int]] = None,
    successes_per_thread: int = 6,
    configs: Optional[List[str]] = None,
    seed: int = 2016,
) -> SweepSpec:
    """The declarative grid behind Figure 9."""
    kinds = kinds if kinds is not None else list(CasKernelKind)
    core_counts = core_counts if core_counts is not None else [64]
    critical_sections = (
        critical_sections if critical_sections is not None else DEFAULT_CRITICAL_SECTIONS
    )
    configs = configs if configs is not None else CAS_CONFIGS
    specs = [
        spec
        for kind in kinds
        for cores in core_counts
        for crit in critical_sections
        for spec in specs_over_configs(
            "cas",
            {
                "kind": CasKernelKind(kind).value,
                "critical_section_instructions": crit,
                "successes_per_thread": successes_per_thread,
            },
            cores,
            configs,
            seed,
        )
    ]
    return SweepSpec(name="fig9", specs=tuple(specs))


def run_fig9(
    kinds: Optional[List[CasKernelKind]] = None,
    core_counts: Optional[List[int]] = None,
    critical_sections: Optional[List[int]] = None,
    successes_per_thread: int = 6,
    configs: Optional[List[str]] = None,
    runner: Optional[Runner] = None,
) -> Dict[Tuple[str, int, int], Dict[str, float]]:
    """Throughput (CAS/1000 cycles) keyed by ``(kernel, cores, crit)`` then config."""
    sweep = fig9_sweep(kinds, core_counts, critical_sections, successes_per_thread, configs)
    results = run_sweep(sweep, runner)
    series: Dict[Tuple[str, int, int], Dict[str, float]] = {}
    for spec in sweep:
        params = spec.params_dict()
        key = (params["kind"], spec.num_cores, params["critical_section_instructions"])
        total = successes_per_thread * spec.num_cores
        series.setdefault(key, {})[spec.config] = throughput_per_kcycle(
            total, results[spec].total_cycles
        )
    return series


def format_fig9(series: Dict[Tuple[str, int, int], Dict[str, float]]) -> str:
    labels = sorted({label for row in series.values() for label in row})
    headers = ["kernel", "cores", "crit_section"] + labels
    rows = []
    for key in sorted(series):
        kernel, cores, crit = key
        row = [kernel, cores, crit]
        row.extend(series[key].get(label, float("nan")) for label in labels)
        rows.append(row)
    return format_table(headers, rows, title="Figure 9: CAS throughput per 1000 cycles")
