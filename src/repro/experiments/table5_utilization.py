"""Table 5: Data-channel utilization of WiSyncNoT and WiSync.

The paper reports, for the most demanding applications and as a geometric
mean over all applications, the percentage of total cycles in which the Data
channel is busy, for WiSyncNoT (WT) and WiSync (W).  WiSync's utilization is
lower because barrier traffic moves to the Tone channel.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.metrics import utilization_percent
from repro.analysis.tables import format_table
from repro.experiments.common import run_sweep, specs_over_configs
from repro.runner.runner import Runner
from repro.runner.spec import SweepSpec
from repro.sim.stats import geometric_mean

#: Applications the paper singles out in Table 5 (most demanding ones).
TABLE5_APPS = ["streamcluster", "radiosity", "water-ns", "fluidanimate",
               "raytrace", "ocean-c", "ocean-nc"]


def table5_sweep(
    apps: Optional[List[str]] = None,
    num_cores: int = 64,
    phase_scale: float = 1.0,
    seed: int = 2016,
) -> SweepSpec:
    """The declarative grid behind Table 5 (the two WiSync configurations)."""
    apps = apps if apps is not None else TABLE5_APPS
    specs = [
        spec
        for app in apps
        for spec in specs_over_configs(
            "application",
            {"app": app, "phase_scale": phase_scale},
            num_cores,
            configs=["WiSyncNoT", "WiSync"],
            seed=seed,
        )
    ]
    return SweepSpec(name="table5", specs=tuple(specs))


def run_table5(
    apps: Optional[List[str]] = None,
    num_cores: int = 64,
    phase_scale: float = 1.0,
    include_geomean_over: Optional[List[str]] = None,
    runner: Optional[Runner] = None,
) -> Dict[str, Dict[str, float]]:
    """Data-channel utilization (%) keyed by application then configuration."""
    apps = apps if apps is not None else TABLE5_APPS
    sweep = table5_sweep(apps, num_cores, phase_scale)
    results = run_sweep(sweep, runner)
    table: Dict[str, Dict[str, float]] = {}
    for spec in sweep:
        app = spec.params_dict()["app"]
        table.setdefault(app, {})[spec.config] = utilization_percent(results[spec])
    geo_apps = include_geomean_over if include_geomean_over is not None else apps
    geo_rows = [table[a] for a in geo_apps if a in table]
    if geo_rows:
        table["GM"] = {
            label: geometric_mean([max(1e-6, row[label]) for row in geo_rows])
            for label in ("WiSyncNoT", "WiSync")
        }
    return table


def format_table5(table: Dict[str, Dict[str, float]]) -> str:
    headers = ["application", "WiSyncNoT (%)", "WiSync (%)"]
    rows = [[name, cols.get("WiSyncNoT", 0.0), cols.get("WiSync", 0.0)]
            for name, cols in table.items()]
    return format_table(headers, rows, title="Table 5: Data-channel utilization (% of cycles)")
