"""Table 5: Data-channel utilization of WiSyncNoT and WiSync.

The paper reports, for the most demanding applications and as a geometric
mean over all applications, the percentage of total cycles in which the Data
channel is busy, for WiSyncNoT (WT) and WiSync (W).  WiSync's utilization is
lower because barrier traffic moves to the Tone channel.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.metrics import utilization_percent
from repro.analysis.tables import format_table
from repro.experiments.common import run_workload_on_configs
from repro.sim.stats import geometric_mean
from repro.workloads.synthetic_apps import application_names, build_application, profile_by_name

#: Applications the paper singles out in Table 5 (most demanding ones).
TABLE5_APPS = ["streamcluster", "radiosity", "water-ns", "fluidanimate",
               "raytrace", "ocean-c", "ocean-nc"]


def run_table5(
    apps: Optional[List[str]] = None,
    num_cores: int = 64,
    phase_scale: float = 1.0,
    include_geomean_over: Optional[List[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Data-channel utilization (%) keyed by application then configuration."""
    apps = apps if apps is not None else TABLE5_APPS
    table: Dict[str, Dict[str, float]] = {}
    for app in apps:
        profile = profile_by_name(app)
        results = run_workload_on_configs(
            lambda machine, _p=profile: build_application(machine, _p, phase_scale=phase_scale),
            num_cores=num_cores,
            configs=["WiSyncNoT", "WiSync"],
        )
        table[app] = {
            label: utilization_percent(result) for label, result in results.items()
        }
    geo_apps = include_geomean_over if include_geomean_over is not None else apps
    geo_rows = [table[a] for a in geo_apps if a in table]
    if geo_rows:
        table["GM"] = {
            label: geometric_mean([max(1e-6, row[label]) for row in geo_rows])
            for label in ("WiSyncNoT", "WiSync")
        }
    return table


def format_table5(table: Dict[str, Dict[str, float]]) -> str:
    headers = ["application", "WiSyncNoT (%)", "WiSync (%)"]
    rows = [[name, cols.get("WiSyncNoT", 0.0), cols.get("WiSync", 0.0)]
            for name, cols in table.items()]
    return format_table(headers, rows, title="Table 5: Data-channel utilization (% of cycles)")
