"""Table 5: Data-channel utilization of WiSyncNoT and WiSync.

The paper reports, for the most demanding applications and as a geometric
mean over all applications, the percentage of total cycles in which the Data
channel is busy, for WiSyncNoT (WT) and WiSync (W).  WiSync's utilization is
lower because barrier traffic moves to the Tone channel.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.report import AggregateRow, Report, derive
from repro.experiments.common import run_frame, specs_over_configs
from repro.runner.runner import Runner
from repro.runner.spec import SweepSpec

#: Applications the paper singles out in Table 5 (most demanding ones).
TABLE5_APPS = ["streamcluster", "radiosity", "water-ns", "fluidanimate",
               "raytrace", "ocean-c", "ocean-nc"]

TABLE5_CONFIGS = ("WiSyncNoT", "WiSync")

#: Declarative presentation: utilization percentage per app, with a clamped
#: geomean row (an application with ~0% utilization must not zero the GM).
TABLE5_REPORT = Report(
    name="table5",
    title="Table 5: Data-channel utilization (% of cycles)",
    index=("app",),
    index_headers=("application",),
    series="config",
    values="utilization_pct",
    transforms=(
        derive("utilization_pct", lambda row: 100.0 * row["data_channel_utilization"]),
    ),
    aggregates=(
        AggregateRow("GM", "geomean", series=TABLE5_CONFIGS, clamp_min=1e-6),
    ),
    series_order=TABLE5_CONFIGS,
    series_headers=(("WiSyncNoT", "WiSyncNoT (%)"), ("WiSync", "WiSync (%)")),
    filter_present=False,
    missing=0.0,
)


def table5_sweep(
    apps: Optional[List[str]] = None,
    num_cores: int = 64,
    phase_scale: float = 1.0,
    seed: int = 2016,
) -> SweepSpec:
    """The declarative grid behind Table 5 (the two WiSync configurations)."""
    apps = apps if apps is not None else TABLE5_APPS
    specs = [
        spec
        for app in apps
        for spec in specs_over_configs(
            "application",
            {"app": app, "phase_scale": phase_scale},
            num_cores,
            configs=list(TABLE5_CONFIGS),
            seed=seed,
        )
    ]
    return SweepSpec(name="table5", specs=tuple(specs))


def run_table5(
    apps: Optional[List[str]] = None,
    num_cores: int = 64,
    phase_scale: float = 1.0,
    include_geomean_over: Optional[List[str]] = None,
    runner: Optional[Runner] = None,
) -> Dict[str, Dict[str, float]]:
    """Data-channel utilization (%) keyed by application then configuration."""
    frame = run_frame(table5_sweep(apps, num_cores, phase_scale), runner)
    table = TABLE5_REPORT.table(frame)
    if include_geomean_over is not None:
        # Recompute only the GM row over the requested application subset.
        table.pop("GM", None)
        subset = TABLE5_REPORT.pivot(frame.where(app=tuple(include_geomean_over)))
        gm = TABLE5_REPORT.aggregates[0].compute(subset.to_dict())
        if gm:
            table["GM"] = gm
    return table


def format_table5(table: Dict[str, Dict[str, float]]) -> str:
    return TABLE5_REPORT.render_table(table)
