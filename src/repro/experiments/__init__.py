"""Experiment harness: one module per table/figure of the paper's evaluation.

Every module exposes a ``run_*`` function that executes the simulations and
returns structured data (dictionaries keyed by configuration / sweep point)
plus a ``format_*`` helper that renders the same rows the paper reports.
The ``benchmarks/`` directory wraps these functions with pytest-benchmark.
"""

from repro.experiments.fig7_tightloop import format_fig7, run_fig7
from repro.experiments.fig8_livermore import format_fig8, run_fig8
from repro.experiments.fig9_cas import format_fig9, run_fig9
from repro.experiments.fig10_applications import format_fig10, run_fig10
from repro.experiments.fig11_sensitivity import format_fig11, run_fig11
from repro.experiments.table4_area_power import format_table4, run_table4
from repro.experiments.table5_utilization import format_table5, run_table5

__all__ = [
    "run_fig7", "format_fig7",
    "run_fig8", "format_fig8",
    "run_fig9", "format_fig9",
    "run_fig10", "format_fig10",
    "run_fig11", "format_fig11",
    "run_table4", "format_table4",
    "run_table5", "format_table5",
]
