"""Experiment harness: one module per table/figure of the paper's evaluation.

Every module declares its evaluation grid as a ``*_sweep`` function returning
a :class:`~repro.runner.spec.SweepSpec`, executed through
:class:`~repro.runner.runner.Runner` — so any figure can be fanned out over a
:class:`~repro.runner.executor.ParallelExecutor`, memoized in a
:class:`~repro.runner.cache.ResultCache`, or driven from the
``python -m repro`` CLI — and its *presentation* as a
:class:`~repro.analysis.report.Report` over the sweep's
:class:`~repro.analysis.frame.MetricFrame` (axes, derived columns, pivot,
aggregate rows).  The ``run_*`` functions keep their historical signatures
and dict shapes, but are thin wrappers over ``Report.table(sweep.frame())``;
the ``format_*`` helpers render those dicts through the same Report, so the
``python -m repro report`` path is byte-identical.  The ``benchmarks/``
directory wraps these functions with pytest-benchmark.
"""

from repro.experiments.fig7_tightloop import FIG7_REPORT, fig7_sweep, format_fig7, run_fig7
from repro.experiments.scenarios import (
    format_scenarios,
    run_scenarios,
    scenario_frame,
    scenario_sweep,
    scenarios_report,
)
from repro.experiments.fig8_livermore import FIG8_REPORT, fig8_sweep, format_fig8, run_fig8
from repro.experiments.fig9_cas import FIG9_REPORT, fig9_sweep, format_fig9, run_fig9
from repro.experiments.fig10_applications import (
    fig10_report,
    fig10_sweep,
    format_fig10,
    run_fig10,
)
from repro.experiments.fig11_sensitivity import (
    FIG11_REPORT,
    fig11_sweep,
    format_fig11,
    run_fig11,
)
from repro.experiments.table4_area_power import (
    TABLE4_REPORT,
    format_table4,
    run_table4,
    table4_frame,
)
from repro.experiments.table5_utilization import (
    TABLE5_REPORT,
    format_table5,
    run_table5,
    table5_sweep,
)

__all__ = [
    "run_fig7", "format_fig7", "fig7_sweep", "FIG7_REPORT",
    "run_fig8", "format_fig8", "fig8_sweep", "FIG8_REPORT",
    "run_fig9", "format_fig9", "fig9_sweep", "FIG9_REPORT",
    "run_fig10", "format_fig10", "fig10_sweep", "fig10_report",
    "run_fig11", "format_fig11", "fig11_sweep", "FIG11_REPORT",
    "run_table4", "format_table4", "table4_frame", "TABLE4_REPORT",
    "run_table5", "format_table5", "table5_sweep", "TABLE5_REPORT",
    "run_scenarios", "format_scenarios", "scenario_sweep",
    "scenario_frame", "scenarios_report",
]
