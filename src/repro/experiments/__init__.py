"""Experiment harness: one module per table/figure of the paper's evaluation.

Every module declares its evaluation grid as a ``*_sweep`` function returning
a :class:`~repro.runner.spec.SweepSpec`, executed through
:class:`~repro.runner.runner.Runner` — so any figure can be fanned out over a
:class:`~repro.runner.executor.ParallelExecutor`, memoized in a
:class:`~repro.runner.cache.ResultCache`, or driven from the
``python -m repro`` CLI.  The legacy ``run_*`` functions remain as thin
compatibility wrappers over the Runner (same signatures plus an optional
``runner=`` argument) and still return the same structured dictionaries; the
``format_*`` helpers render the rows the paper reports.  The ``benchmarks/``
directory wraps these functions with pytest-benchmark.
"""

from repro.experiments.fig7_tightloop import fig7_sweep, format_fig7, run_fig7
from repro.experiments.scenarios import (
    format_scenarios,
    run_scenarios,
    scenario_sweep,
)
from repro.experiments.fig8_livermore import fig8_sweep, format_fig8, run_fig8
from repro.experiments.fig9_cas import fig9_sweep, format_fig9, run_fig9
from repro.experiments.fig10_applications import fig10_sweep, format_fig10, run_fig10
from repro.experiments.fig11_sensitivity import fig11_sweep, format_fig11, run_fig11
from repro.experiments.table4_area_power import format_table4, run_table4
from repro.experiments.table5_utilization import format_table5, run_table5, table5_sweep

__all__ = [
    "run_fig7", "format_fig7", "fig7_sweep",
    "run_fig8", "format_fig8", "fig8_sweep",
    "run_fig9", "format_fig9", "fig9_sweep",
    "run_fig10", "format_fig10", "fig10_sweep",
    "run_fig11", "format_fig11", "fig11_sweep",
    "run_table4", "format_table4",
    "run_table5", "format_table5", "table5_sweep",
    "run_scenarios", "format_scenarios", "scenario_sweep",
]
