"""Table 4: area and power of the transceiver plus two antennas.

Pure analytical model (no simulation): the Section 2 RF scaling projections
compared against the Xeon Haswell and Atom Silvermont cores at 22 nm.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.area_power import area_power_table
from repro.analysis.tables import format_table


def run_table4(technology_nm: int = 22, runner=None) -> Dict[str, Dict[str, float]]:
    """Regenerate Table 4's numbers at the requested technology node.

    ``runner`` is accepted (and ignored) for CLI uniformity with the
    simulation-backed experiments; this one is a closed-form model.
    """
    return area_power_table(technology_nm)


def format_table4(table: Dict[str, Dict[str, float]]) -> str:
    rf = table["transceiver+2antennas"]
    headers = ["item", "area_mm2", "power_w", "rf_area_%", "rf_power_%"]
    rows = [["transceiver+2antennas", rf["area_mm2"], rf["power_w"], "-", "-"]]
    for name, columns in table.items():
        if name == "transceiver+2antennas":
            continue
        rows.append([
            name,
            columns["area_mm2"],
            columns["power_w"],
            columns["rf_area_percent"],
            columns["rf_power_percent"],
        ])
    return format_table(headers, rows, title="Table 4: transceiver + 2 antennas vs 22nm cores")
