"""Table 4: area and power of the transceiver plus two antennas.

Pure analytical model (no simulation): the Section 2 RF scaling projections
compared against the Xeon Haswell and Atom Silvermont cores at 22 nm.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.area_power import area_power_table
from repro.analysis.frame import Column, MetricFrame
from repro.analysis.report import Report

#: Column layout of the analytical table's frame.
TABLE4_SCHEMA = (
    Column("item", "str", "dim"),
    Column("area_mm2", "float", "metric"),
    Column("power_w", "float", "metric"),
    Column("rf_area_percent", "float", "metric"),
    Column("rf_power_percent", "float", "metric"),
)

#: Declarative presentation: one row per item, fixed value columns; the RF
#: row's not-applicable percentage cells render as "-".
TABLE4_REPORT = Report(
    name="table4",
    title="Table 4: transceiver + 2 antennas vs 22nm cores",
    index=("item",),
    values="area_mm2",
    series=None,
    value_columns=(
        ("area_mm2", "area_mm2"),
        ("power_w", "power_w"),
        ("rf_area_percent", "rf_area_%"),
        ("rf_power_percent", "rf_power_%"),
    ),
)


def table4_frame(technology_nm: int = 22) -> MetricFrame:
    """The analytical Table 4 numbers as a MetricFrame."""
    rows = [
        {"item": name, **columns}
        for name, columns in area_power_table(technology_nm).items()
    ]
    return MetricFrame.from_rows(TABLE4_SCHEMA, rows)


def run_table4(technology_nm: int = 22, runner=None) -> Dict[str, Dict[str, float]]:
    """Regenerate Table 4's numbers at the requested technology node.

    ``runner`` is accepted (and ignored) for CLI uniformity with the
    simulation-backed experiments; this one is a closed-form model.
    """
    return TABLE4_REPORT.table(table4_frame(technology_nm))


def format_table4(table: Dict[str, Dict[str, float]]) -> str:
    return TABLE4_REPORT.render_table(table)
