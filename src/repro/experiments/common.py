"""Shared helpers for the experiment modules.

The experiment modules are declarative: each builds a
:class:`~repro.runner.spec.SweepSpec` grid and executes it through a
:class:`~repro.runner.runner.Runner` (serial by default; pass a runner with a
:class:`~repro.runner.executor.ParallelExecutor` and/or a
:class:`~repro.runner.cache.ResultCache` to fan sweeps out and memoize them).
``run_workload_on_configs`` remains for ad-hoc, non-serializable builders.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.config import MachineConfig
from repro.machine.configs import baseline, baseline_plus, wisync, wisync_not
from repro.machine.manycore import Manycore
from repro.machine.results import SimResult
from repro.runner.runner import Runner, default_runner
from repro.runner.spec import RunSpec, SweepSpec

#: The Table 2 configurations in the paper's presentation order.
CONFIG_BUILDERS: Dict[str, Callable[..., MachineConfig]] = {
    "Baseline": baseline,
    "Baseline+": baseline_plus,
    "WiSyncNoT": wisync_not,
    "WiSync": wisync,
}


def config_names(include_baseline: bool = True) -> List[str]:
    names = list(CONFIG_BUILDERS)
    if not include_baseline:
        names.remove("Baseline")
    return names


def build_machine(config_label: str, num_cores: int, seed: int = 2016) -> Manycore:
    """Build a fresh machine for one Table 2 configuration."""
    config = CONFIG_BUILDERS[config_label](num_cores=num_cores, seed=seed)
    return Manycore(config)


def run_workload_on_configs(
    builder: Callable[[Manycore], object],
    num_cores: int,
    configs: Optional[List[str]] = None,
    seed: int = 2016,
) -> Dict[str, SimResult]:
    """Run one workload builder on each requested configuration.

    Legacy serial helper for ad-hoc (closure-based) builders; the experiment
    modules themselves now run registered workloads through the Runner.
    """
    results: Dict[str, SimResult] = {}
    for label in configs if configs is not None else list(CONFIG_BUILDERS):
        machine = build_machine(label, num_cores, seed)
        handle = builder(machine)
        results[label] = handle.run()
    return results


def specs_over_configs(
    workload: str,
    params: Dict[str, object],
    num_cores: int,
    configs: Optional[List[str]] = None,
    seed: int = 2016,
    variant: Optional[str] = None,
) -> List[RunSpec]:
    """One RunSpec per requested Table 2 configuration, in table order."""
    labels = configs if configs is not None else list(CONFIG_BUILDERS)
    return [
        RunSpec(
            workload=workload,
            params=tuple(params.items()),
            config=label,
            num_cores=num_cores,
            seed=seed,
            variant=variant,
        )
        for label in labels
    ]


def run_sweep(
    sweep: SweepSpec, runner: Optional[Runner] = None
) -> Dict[RunSpec, SimResult]:
    """Execute ``sweep`` on ``runner`` (serial default); results per spec."""
    return default_runner(runner).run(sweep).results


def run_frame(sweep: SweepSpec, runner: Optional[Runner] = None):
    """Execute ``sweep`` and return its :class:`~repro.analysis.frame.MetricFrame`.

    This is the canonical consumption path: every experiment module's
    ``run_*`` function builds its table by piping this frame through the
    module's :class:`~repro.analysis.report.Report`.
    """
    return default_runner(runner).run(sweep).frame()
