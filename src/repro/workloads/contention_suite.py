"""Contention-scenario suite: non-paper synchronization workloads.

The paper's evaluation (fig7-fig10) exercises a fixed grid of kernels.  This
module grows the repository into a *scenario engine*: a family of
parameterized synchronization patterns whose whole point is to stress the
broadcast plane — and its MAC backoff policies — under varied contention:

* ``pc_ring``       — producer/consumer ring over SPSC channels with a shared
                      :class:`~repro.sync.cells.AtomicCell` throughput counter.
* ``rwlock``        — readers-writer lock over one atomic word, read/write mix.
* ``work_steal``    — work stealing from per-thread atomic task pools with
                      eureka (:class:`~repro.sync.eureka.OrBarrier`) termination.
* ``barrier_storm`` — back-to-back barrier episodes with skewed arrival times.
* ``mixed_phases``  — an "app-like" alternation of lock, reduction, and
                      pipeline phases separated by barriers.

Every builder is registered with :func:`~repro.runner.registry.register_workload`,
so the scenarios are sweepable over cores x Table 2 config x contention level
x backoff policy through :mod:`repro.experiments.scenarios` and the
``python -m repro run scenarios`` CLI.  :data:`SCENARIOS` is the catalog the
``python -m repro scenarios`` listing renders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import WorkloadError
from repro.isa.operations import Compute, Read, Write
from repro.machine.manycore import Manycore
from repro.runner.registry import register_workload
from repro.sync.api import SyncFactory
from repro.workloads.base import WorkloadHandle


@dataclass(frozen=True)
class ScenarioInfo:
    """Catalog entry for one contention scenario."""

    name: str
    summary: str
    knobs: Tuple[Tuple[str, object], ...]   # (knob name, default value)
    example: str

    def knobs_dict(self) -> Dict[str, object]:
        return dict(self.knobs)


#: name -> catalog entry, populated by ``_scenario`` below.
SCENARIOS: Dict[str, ScenarioInfo] = {}


def scenario_names() -> List[str]:
    """Names of every registered contention scenario."""
    return sorted(SCENARIOS)


def scenario_info(name: str) -> ScenarioInfo:
    if name not in SCENARIOS:
        raise WorkloadError(
            f"unknown scenario {name!r}; known scenarios: {scenario_names()}"
        )
    return SCENARIOS[name]


def _scenario(summary: str, knobs: Tuple[Tuple[str, object], ...], example: str):
    """Register a builder both as a workload and in the scenario catalog."""

    def decorator(builder):
        name = builder.__name__.replace("build_", "")
        SCENARIOS[name] = ScenarioInfo(name, summary, knobs, example)
        return register_workload(name)(builder)

    return decorator


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise WorkloadError(message)


# ---------------------------------------------------------------------------
# pc_ring: producer/consumer ring
# ---------------------------------------------------------------------------
@_scenario(
    summary=(
        "producer/consumer ring: thread i feeds an SPSC channel to thread i+1 "
        "and bumps a shared AtomicCell item counter"
    ),
    knobs=(("items", 6), ("think_cycles", 120), ("num_threads", None)),
    example="python -m repro run scenarios --scenarios pc_ring --cores 16 --progress",
)
def build_pc_ring(
    machine: Manycore,
    items: int = 6,
    think_cycles: int = 120,
    num_threads: Optional[int] = None,
) -> WorkloadHandle:
    """Each thread produces ``items`` payloads downstream and consumes upstream.

    The shared item counter makes every handoff also hit one hot atomic word,
    so the channel traffic and the counter's RMW traffic contend for the same
    broadcast plane; lower ``think_cycles`` means denser contention.
    """
    _require(items >= 1, "pc_ring needs items >= 1")
    _require(think_cycles >= 0, "pc_ring think_cycles must be >= 0")
    if num_threads is None:
        num_threads = machine.config.num_cores
    program = machine.new_program("pc_ring")
    sync = SyncFactory(program)
    channels = [sync.create_channel() for _ in range(num_threads)]
    counter = sync.create_cell()

    def body(ctx):
        me = ctx.thread_id
        downstream = channels[me]
        upstream = channels[(me - 1) % num_threads]
        checksum = 0
        for item in range(items):
            if think_cycles:
                yield Compute(ctx.rng.jitter(think_cycles, fraction=0.2))
            yield from downstream.produce(ctx, (me, item, me ^ item, item + 1))
            values = yield from upstream.consume(ctx)
            checksum += values[3]
            yield from counter.fetch_add(ctx, 1)
        return checksum

    for _ in range(num_threads):
        program.add_thread(body)
    return WorkloadHandle(
        name="pc_ring",
        machine=machine,
        program=program,
        num_threads=num_threads,
        metadata={
            "iterations": items,
            "total_items": items * num_threads,
            # Completed operations = ring handoffs (each produce+consume pair).
            "operations": items * num_threads,
        },
    )


# ---------------------------------------------------------------------------
# rwlock: readers-writer lock
# ---------------------------------------------------------------------------
@_scenario(
    summary=(
        "readers-writer lock over one atomic word; threads mix shared reads "
        "with exclusive writes of a small table"
    ),
    knobs=(
        ("operations", 8), ("write_fraction", 0.2), ("read_cycles", 40),
        ("write_cycles", 80), ("think_cycles", 100), ("num_threads", None),
    ),
    example=(
        "python -m repro run scenarios --scenarios rwlock "
        "--contention high --progress"
    ),
)
def build_rwlock(
    machine: Manycore,
    operations: int = 8,
    write_fraction: float = 0.2,
    read_cycles: int = 40,
    write_cycles: int = 80,
    think_cycles: int = 100,
    num_threads: Optional[int] = None,
) -> WorkloadHandle:
    """Each thread performs ``operations`` reads/writes under the rwlock.

    ``write_fraction`` steers the exclusive share: 0.0 degenerates to pure
    reader throughput (one CAS per entry), 1.0 serializes everything.
    """
    _require(operations >= 1, "rwlock needs operations >= 1")
    _require(0.0 <= write_fraction <= 1.0, "rwlock write_fraction must be in [0, 1]")
    if num_threads is None:
        num_threads = machine.config.num_cores
    program = machine.new_program("rwlock")
    sync = SyncFactory(program)
    rwlock = sync.create_rwlock()
    table = [program.alloc_shared() for _ in range(8)]

    def body(ctx):
        reads = writes = 0
        for op in range(operations):
            if think_cycles:
                yield Compute(ctx.rng.jitter(think_cycles, fraction=0.2))
            if ctx.rng.random() < write_fraction:
                yield from rwlock.acquire_write(ctx)
                yield Write(table[(ctx.thread_id + op) % len(table)], op)
                yield Compute(write_cycles)
                yield from rwlock.release_write(ctx)
                writes += 1
            else:
                yield from rwlock.acquire_read(ctx)
                yield Read(table[(ctx.thread_id + op) % len(table)])
                yield Compute(read_cycles)
                yield from rwlock.release_read(ctx)
                reads += 1
        return reads, writes

    for _ in range(num_threads):
        program.add_thread(body)
    return WorkloadHandle(
        name="rwlock",
        machine=machine,
        program=program,
        num_threads=num_threads,
        metadata={
            "iterations": operations,
            "write_fraction": write_fraction,
            # Completed operations = lock-protected reads + writes, all threads.
            "operations": operations * num_threads,
        },
    )


# ---------------------------------------------------------------------------
# work_steal: work stealing with eureka termination
# ---------------------------------------------------------------------------
@_scenario(
    summary=(
        "work stealing from per-thread atomic task pools; the thread that "
        "finishes the last task posts an OrBarrier eureka"
    ),
    knobs=(
        ("tasks_per_thread", 6), ("task_cycles", 150), ("seed_stride", 1),
        ("num_threads", None),
    ),
    example=(
        "python -m repro run scenarios --scenarios work_steal "
        "--backoffs broadcast_aware,exponential --progress"
    ),
)
def build_work_steal(
    machine: Manycore,
    tasks_per_thread: int = 6,
    task_cycles: int = 150,
    seed_stride: int = 1,
    num_threads: Optional[int] = None,
) -> WorkloadHandle:
    """Threads drain atomic task pools, stealing from neighbours when empty.

    ``seed_stride`` skews the initial distribution: with stride ``s`` only
    every ``s``-th thread is seeded (with ``s`` times the work), so the other
    threads must steal from the start — the eureka/termination traffic and
    the steal CASes all land on the broadcast plane at once.  Completion is
    detected with a shared done-counter; whoever retires the last task posts
    the :class:`~repro.sync.eureka.OrBarrier` and everyone else blocks on it.

    Pools are drained with a CAS pop rather than a blind fetch&add(-1): BM
    entries are unsigned 64-bit words, so decrementing an empty pool would
    wrap to ``2**64 - 1`` and read back as claimable work.
    """
    _require(tasks_per_thread >= 1, "work_steal needs tasks_per_thread >= 1")
    _require(seed_stride >= 1, "work_steal seed_stride must be >= 1")
    if num_threads is None:
        num_threads = machine.config.num_cores
    program = machine.new_program("work_steal")
    sync = SyncFactory(program)
    seeds = [
        tasks_per_thread * seed_stride if tid % seed_stride == 0 else 0
        for tid in range(num_threads)
    ]
    total_tasks = sum(seeds)
    pools = [sync.create_cell() for _ in range(num_threads)]
    done = sync.create_cell()
    eureka = sync.create_or_barrier()
    barrier = sync.create_barrier(num_threads)

    def try_pop(ctx, pool):
        """CAS one task out of ``pool``; returns True when a task was claimed."""
        while True:
            value = yield from pool.read(ctx)
            if value == 0:
                return False
            success, _ = yield from pool.cas(ctx, expected=value, new=value - 1)
            if success:
                return True
            # Lost the race; the winner made progress, so re-read and retry.

    def body(ctx):
        me = ctx.thread_id
        # Seed the local pool, then rendezvous so nobody steals from an
        # unseeded pool.
        yield from pools[me].write(ctx, seeds[me])
        yield from barrier.wait(ctx)
        processed = 0
        while True:
            claimed = False
            for offset in range(num_threads):
                victim = (me + offset) % num_threads
                if seeds[victim] == 0:
                    continue  # never seeded, nothing to steal
                popped = yield from try_pop(ctx, pools[victim])
                if popped:
                    claimed = True
                    yield Compute(ctx.rng.jitter(task_cycles, fraction=0.1))
                    yield Write(program.private_addr(me, processed % 64), victim + 1)
                    processed += 1
                    retired = yield from done.fetch_add(ctx, 1)
                    if retired + 1 == total_tasks:
                        yield from eureka.post(ctx)
                        return processed
                    break
            if not claimed:
                # Every pool is drained; wait for the last in-flight task.
                yield from eureka.wait(ctx)
                return processed

    for _ in range(num_threads):
        program.add_thread(body)
    return WorkloadHandle(
        name="work_steal",
        machine=machine,
        program=program,
        num_threads=num_threads,
        metadata={
            "iterations": tasks_per_thread,
            "total_tasks": total_tasks,
            # Completed operations = tasks retired (conserved under stealing).
            "operations": total_tasks,
        },
    )


# ---------------------------------------------------------------------------
# barrier_storm: phased barriers with skewed arrival
# ---------------------------------------------------------------------------
@_scenario(
    summary=(
        "back-to-back barrier episodes; arrival skew makes late threads hit "
        "an already-contended release wave"
    ),
    knobs=(
        ("phases", 4), ("storms_per_phase", 2), ("compute_cycles", 200),
        ("skew", 0.5), ("num_threads", None),
    ),
    example=(
        "python -m repro run scenarios --scenarios barrier_storm "
        "--configs WiSync,Baseline --progress"
    ),
)
def build_barrier_storm(
    machine: Manycore,
    phases: int = 4,
    storms_per_phase: int = 2,
    compute_cycles: int = 200,
    skew: float = 0.5,
    num_threads: Optional[int] = None,
) -> WorkloadHandle:
    """Each phase computes (skewed per thread) then crosses several barriers.

    ``skew`` scales per-thread compute linearly with the thread id, so high
    skew spreads arrivals out (the paper's worst case for centralized
    barriers) while ``storms_per_phase`` packs release waves back to back
    (the worst case for the MAC).
    """
    _require(phases >= 1, "barrier_storm needs phases >= 1")
    _require(storms_per_phase >= 1, "barrier_storm needs storms_per_phase >= 1")
    _require(skew >= 0.0, "barrier_storm skew must be >= 0")
    if num_threads is None:
        num_threads = machine.config.num_cores
    program = machine.new_program("barrier_storm")
    sync = SyncFactory(program)
    barrier = sync.create_barrier(num_threads)
    spread = max(1, num_threads - 1)

    def body(ctx):
        slowdown = 1.0 + skew * ctx.thread_id / spread
        for _ in range(phases):
            yield Compute(ctx.rng.jitter(int(compute_cycles * slowdown), fraction=0.1))
            for _ in range(storms_per_phase):
                yield from barrier.wait(ctx)
        return phases

    for _ in range(num_threads):
        program.add_thread(body)
    return WorkloadHandle(
        name="barrier_storm",
        machine=machine,
        program=program,
        num_threads=num_threads,
        metadata={
            "iterations": phases,
            "barriers": phases * storms_per_phase,
            # Completed operations = barrier crossings over all threads.
            "operations": phases * storms_per_phase * num_threads,
        },
    )


# ---------------------------------------------------------------------------
# mixed_phases: app-like alternation of synchronization styles
# ---------------------------------------------------------------------------
@_scenario(
    summary=(
        "app-like phases alternating lock arrays, shared reductions, and "
        "pairwise pipelines, separated by barriers"
    ),
    knobs=(
        ("phases", 6), ("compute_cycles", 150), ("num_locks", 4),
        ("critical_cycles", 30), ("num_threads", None),
    ),
    example=(
        "python -m repro run scenarios --scenarios mixed_phases "
        "--cores 16,32 --progress"
    ),
)
def build_mixed_phases(
    machine: Manycore,
    phases: int = 6,
    compute_cycles: int = 150,
    num_locks: int = 4,
    critical_cycles: int = 30,
    num_threads: Optional[int] = None,
) -> WorkloadHandle:
    """Cycles through lock, reduction, and pipeline phases under one program.

    Phase ``3k`` hammers a small lock array, phase ``3k+1`` runs a shared
    reduction, phase ``3k+2`` moves payloads through pairwise SPSC channels;
    every phase ends in a barrier, so the synchronization styles hit the
    broadcast plane in distinct, repeating bursts — the closest scenario to
    the mixed traffic of a real application.
    """
    _require(phases >= 1, "mixed_phases needs phases >= 1")
    _require(num_locks >= 1, "mixed_phases needs num_locks >= 1")
    if num_threads is None:
        num_threads = machine.config.num_cores
    program = machine.new_program("mixed_phases")
    sync = SyncFactory(program)
    barrier = sync.create_barrier(num_threads)
    locks = sync.create_locks(num_locks)
    reducer = sync.create_reducer()
    # One SPSC channel per full (producer, consumer) pair; with an odd thread
    # count the last thread sits pipeline phases out instead of producing
    # into a channel nobody drains.
    channels = [sync.create_channel() for _ in range(num_threads // 2)]

    def body(ctx):
        me = ctx.thread_id
        for phase in range(phases):
            yield Compute(ctx.rng.jitter(compute_cycles, fraction=0.1))
            style = phase % 3
            if style == 0:
                for acquisition in range(2):
                    lock = locks[(me + phase + acquisition) % num_locks]
                    yield from lock.acquire(ctx)
                    yield Compute(critical_cycles)
                    yield from lock.release(ctx)
            elif style == 1:
                yield from reducer.add(ctx, me + 1)
            elif me // 2 < len(channels):
                channel = channels[me // 2]
                if me % 2 == 0:
                    yield from channel.produce(ctx, (me, phase, me + phase, 1))
                else:
                    yield from channel.consume(ctx)
            yield from barrier.wait(ctx)
        return phases

    for _ in range(num_threads):
        program.add_thread(body)
    return WorkloadHandle(
        name="mixed_phases",
        machine=machine,
        program=program,
        num_threads=num_threads,
        metadata={
            "iterations": phases,
            "num_locks": num_locks,
            # Completed operations = phases finished over all threads.
            "operations": phases * num_threads,
        },
    )
