"""CAS kernels on lock-free data structures (Section 6, Figure 9).

Three kernels exercise compare-and-swap on shared lock-free structures:

* **ADD** — threads insert nodes taken from their private pools into a shared
  queue with a CAS on the tail pointer.
* **FIFO** — threads alternately enqueue (CAS on tail) and dequeue (CAS on
  head) nodes of a shared queue.
* **LIFO** — threads alternately push and pop on a shared stack (CAS on the
  top pointer).

Between consecutive CAS operations each thread executes a configurable
number of instructions (the "critical section size" on Figure 9's x-axis).
The kernels report the number of *successful* CAS operations, from which the
experiment computes throughput per 1000 cycles.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.cpu.frames import START, Call, FrameBody, Op, Ret
from repro.isa.operations import Compute, Read, Write
from repro.machine.manycore import Manycore
from repro.runner.registry import register_workload
from repro.sync.api import SyncFactory
from repro.workloads.base import WorkloadHandle


class CasKernelKind(enum.Enum):
    """The three lock-free kernels of Figure 9."""

    FIFO = "fifo"
    LIFO = "lifo"
    ADD = "add"


def _instructions_to_cycles(instructions: int, issue_width: int) -> int:
    """Instructions between CASes converted to cycles on the issue width."""
    return max(1, instructions // max(1, issue_width))


def _cas_insert(frame, value, env):
    """One successful lock-free insertion: read the pointer, CAS it forward.

    Frame routine; locals carry the target cell's ``sid`` and the
    ``node_value`` to swap in.  Returns the number of attempts taken.
    """
    L, label = frame.locals, frame.label
    if label == START:
        L["attempts"] = 0
        return Call("sync.cell.read", {"sid": L["sid"]}, "read")
    if label == "read":
        L["attempts"] += 1
        return Call(
            "sync.cell.cas",
            {"sid": L["sid"], "expected": value, "new": L["node_value"]},
            "cas",
        )
    # label == "cas"
    success, _ = value
    if success:
        return Ret(L["attempts"])
    return Call("sync.cell.read", {"sid": L["sid"]}, "read")


@register_workload("cas")
def build_cas_kernel(
    machine: Manycore,
    kind: CasKernelKind,
    critical_section_instructions: int,
    successes_per_thread: int = 8,
    num_threads: Optional[int] = None,
) -> WorkloadHandle:
    """Register a CAS kernel on ``machine``."""
    kind = CasKernelKind(kind)
    if num_threads is None:
        num_threads = machine.config.num_cores
    program = machine.new_program(f"cas-{kind.value}")
    sync = SyncFactory(program)
    # Shared structure pointers.  FIFO uses separate head and tail pointers;
    # LIFO and ADD use one pointer.
    tail_cell = sync.create_cell()
    head_cell = sync.create_cell() if kind is CasKernelKind.FIFO else tail_cell
    tail_sid = tail_cell.sync_id
    head_sid = head_cell.sync_id
    think_cycles = _instructions_to_cycles(
        critical_section_instructions, machine.config.core.issue_width
    )

    def body(frame, value, env):
        L, label = frame.locals, frame.label
        tid = env.ctx.thread_id
        pool_base = program.private_addr(tid)
        if label == START:
            if successes_per_thread <= 0:
                return Ret(0)
            L["successes"] = 0
            L["op"] = 0
            # Work between accesses to the shared structure.
            return Op(Compute(think_cycles), "computed")
        op_index = L["op"]
        if label == "computed":
            # Prepare the node in the private pool (one line touched).
            return Op(Write(pool_base + (op_index % 64) * 8, tid + 1), "prepared")
        if label == "prepared":
            # ADD and LIFO hammer one pointer; FIFO alternates enqueue on
            # the tail with dequeue from the head.
            if kind is CasKernelKind.FIFO and op_index % 2 != 0:
                target = head_sid
            else:
                target = tail_sid
            node_value = tid * 1000 + op_index + 1
            return Call(
                "cas.insert", {"sid": target, "node_value": node_value}, "inserted"
            )
        if label == "inserted":
            # Touch the node again (dequeue/pop reads it back).
            return Op(Read(pool_base + (op_index % 64) * 8), "touched")
        # label == "touched"
        successes = L["successes"] + 1
        L["successes"] = successes
        L["op"] = op_index + 1
        if successes < successes_per_thread:
            return Op(Compute(think_cycles), "computed")
        return Ret(successes)

    machine.register_frame_routine("cas.insert", _cas_insert)
    machine.register_frame_routine("cas.body", body)
    for _ in range(num_threads):
        program.add_thread(FrameBody("cas.body"))
    return WorkloadHandle(
        name=f"cas-{kind.value}",
        machine=machine,
        program=program,
        num_threads=num_threads,
        metadata={
            "iterations": successes_per_thread,
            "critical_section_instructions": critical_section_instructions,
            "total_successes": successes_per_thread * num_threads,
        },
    )
