"""CAS kernels on lock-free data structures (Section 6, Figure 9).

Three kernels exercise compare-and-swap on shared lock-free structures:

* **ADD** — threads insert nodes taken from their private pools into a shared
  queue with a CAS on the tail pointer.
* **FIFO** — threads alternately enqueue (CAS on tail) and dequeue (CAS on
  head) nodes of a shared queue.
* **LIFO** — threads alternately push and pop on a shared stack (CAS on the
  top pointer).

Between consecutive CAS operations each thread executes a configurable
number of instructions (the "critical section size" on Figure 9's x-axis).
The kernels report the number of *successful* CAS operations, from which the
experiment computes throughput per 1000 cycles.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.isa.operations import Compute, Read, Write
from repro.machine.manycore import Manycore
from repro.runner.registry import register_workload
from repro.sync.api import SyncFactory
from repro.sync.cells import AtomicCell
from repro.workloads.base import WorkloadHandle


class CasKernelKind(enum.Enum):
    """The three lock-free kernels of Figure 9."""

    FIFO = "fifo"
    LIFO = "lifo"
    ADD = "add"


def _instructions_to_cycles(instructions: int, issue_width: int) -> int:
    """Instructions between CASes converted to cycles on the issue width."""
    return max(1, instructions // max(1, issue_width))


def _cas_insert(ctx, cell: AtomicCell, node_value: int):
    """One successful lock-free insertion: read the pointer, CAS it forward."""
    attempts = 0
    while True:
        attempts += 1
        current = yield from cell.read(ctx)
        success, _ = yield from cell.cas(ctx, expected=current, new=node_value)
        if success:
            return attempts


@register_workload("cas")
def build_cas_kernel(
    machine: Manycore,
    kind: CasKernelKind,
    critical_section_instructions: int,
    successes_per_thread: int = 8,
    num_threads: Optional[int] = None,
) -> WorkloadHandle:
    """Register a CAS kernel on ``machine``."""
    kind = CasKernelKind(kind)
    if num_threads is None:
        num_threads = machine.config.num_cores
    program = machine.new_program(f"cas-{kind.value}")
    sync = SyncFactory(program)
    # Shared structure pointers.  FIFO uses separate head and tail pointers;
    # LIFO and ADD use one pointer.
    tail_cell = sync.create_cell()
    head_cell = sync.create_cell() if kind is CasKernelKind.FIFO else tail_cell
    think_cycles = _instructions_to_cycles(
        critical_section_instructions, machine.config.core.issue_width
    )

    def body(ctx):
        pool_base = program.private_addr(ctx.thread_id)
        successes = 0
        operation_index = 0
        while successes < successes_per_thread:
            # Work between accesses to the shared structure.
            yield Compute(think_cycles)
            # Prepare the node in the private pool (one line touched).
            node_addr = pool_base + (operation_index % 64) * 8
            yield Write(node_addr, ctx.thread_id + 1)
            node_value = ctx.thread_id * 1000 + operation_index + 1
            if kind is CasKernelKind.ADD:
                yield from _cas_insert(ctx, tail_cell, node_value)
            elif kind is CasKernelKind.LIFO:
                # Alternate push / pop on the same top pointer.
                yield from _cas_insert(ctx, tail_cell, node_value)
            else:  # FIFO: alternate enqueue on tail and dequeue from head.
                target = tail_cell if operation_index % 2 == 0 else head_cell
                yield from _cas_insert(ctx, target, node_value)
            # Touch the node again (dequeue/pop reads it back).
            yield Read(node_addr)
            successes += 1
            operation_index += 1
        return successes

    for _ in range(num_threads):
        program.add_thread(body)
    return WorkloadHandle(
        name=f"cas-{kind.value}",
        machine=machine,
        program=program,
        num_threads=num_threads,
        metadata={
            "iterations": successes_per_thread,
            "critical_section_instructions": critical_section_instructions,
            "total_successes": successes_per_thread * num_threads,
        },
    )
