"""Common plumbing for workload builders."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.machine.manycore import Manycore, Program
from repro.machine.results import SimResult


@dataclass
class WorkloadHandle:
    """What a workload builder hands back to the experiment harness.

    ``metadata`` carries workload-specific quantities the experiment needs to
    normalize results (e.g. iterations per thread, total expected operations).
    """

    name: str
    machine: Manycore
    program: Program
    num_threads: int
    metadata: Dict[str, float] = field(default_factory=dict)

    def run(self, max_cycles: Optional[int] = None) -> SimResult:
        """Run the machine and return its result.

        A workload that declares ``metadata["operations"]`` — its total count
        of completed synchronization operations — gets that count recorded in
        ``result.extra``, where the analysis layer's per-op normalizations
        (cycles/op across contention levels) pick it up.  The count is the
        *completed* total, so a ``max_cycles``-truncated run gets no stamp
        (the planned count would make the cut-off run look spuriously cheap
        per operation).
        """
        result = self.machine.run(max_cycles=max_cycles)
        operations = self.metadata.get("operations")
        if operations is not None and result.completed:
            result.extra.setdefault("operations", float(operations))
        return result

    def cycles_per_iteration(self, result: SimResult) -> float:
        """Total cycles divided by the workload's iteration count."""
        iterations = self.metadata.get("iterations", 1) or 1
        return result.total_cycles / iterations
