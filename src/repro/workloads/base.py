"""Common plumbing for workload builders."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.machine.manycore import Manycore, Program
from repro.machine.results import SimResult


@dataclass
class WorkloadHandle:
    """What a workload builder hands back to the experiment harness.

    ``metadata`` carries workload-specific quantities the experiment needs to
    normalize results (e.g. iterations per thread, total expected operations).
    """

    name: str
    machine: Manycore
    program: Program
    num_threads: int
    metadata: Dict[str, float] = field(default_factory=dict)

    def run(self, max_cycles: Optional[int] = None) -> SimResult:
        """Run the machine and return its result."""
        return self.machine.run(max_cycles=max_cycles)

    def cycles_per_iteration(self, result: SimResult) -> float:
        """Total cycles divided by the workload's iteration count."""
        iterations = self.metadata.get("iterations", 1) or 1
        return result.total_cycles / iterations
