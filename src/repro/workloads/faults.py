"""Fault-injection probe for executor and distributed-fabric drills.

Not part of the paper's evaluation: ``fault_probe`` exists so tests — and
operators running chaos drills against a worker fleet — can inject
deterministic workload-level failures through the exact
spec -> registry -> ``execute_spec`` path every real sweep uses.  On success
it behaves as a short TightLoop, so it still produces a genuine
:class:`~repro.machine.results.SimResult`.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

from repro.errors import WorkloadError
from repro.machine.manycore import Manycore
from repro.runner.registry import register_workload
from repro.workloads.base import WorkloadHandle
from repro.workloads.tightloop import build_tightloop


@register_workload("fault_probe")
def build_fault_probe(
    machine: Manycore,
    mode: str = "ok",
    marker: Optional[str] = None,
    fail_count: int = 1,
    iterations: int = 1,
) -> WorkloadHandle:
    """A TightLoop that can be told to fail: always, N times, hard, or never.

    ``mode="raise"`` fails every attempt (a deterministically bad spec);
    ``mode="exit"`` kills the executing process outright (a segfault
    stand-in — under a process pool this breaks the whole pool);
    ``marker=<path>`` counts attempts in the file and fails the first
    ``fail_count`` of them — the retry-then-succeed scenario.  The default
    ``mode="ok"`` never fails.
    """
    if marker is not None:
        attempts = 0
        if os.path.exists(marker):
            attempts = int(Path(marker).read_text(encoding="utf-8").strip() or 0)
        if attempts < fail_count:
            with open(marker, "w", encoding="utf-8") as stream:
                stream.write(f"{attempts + 1}\n")
            raise WorkloadError(
                f"fault_probe: injected failure on attempt {attempts + 1} "
                f"(marker {marker})"
            )
    elif mode == "raise":
        raise WorkloadError("fault_probe: injected failure")
    elif mode == "exit":
        os._exit(3)
    elif mode != "ok":
        raise WorkloadError(f"fault_probe: unknown mode {mode!r}")
    return build_tightloop(machine, iterations=iterations)
