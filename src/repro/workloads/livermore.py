"""Parallelized Livermore loops 2, 3, and 6 (Section 6, Figure 8).

Sampson et al. [37] identify these three loops as the representative ones
with regard to synchronization; the paper parallelizes them with barriers and
sweeps the vector length.  The proxies here reproduce each loop's
synchronization structure:

* **Loop 2** (incomplete Cholesky conjugate gradient fragment): a series of
  passes over the vector in which the active portion halves every pass, with
  a barrier after each pass — many barriers with shrinking work, which is why
  it is the most barrier-sensitive of the three.
* **Loop 3** (inner product): each thread reduces its chunk, adds the partial
  sum into a shared accumulator, and synchronizes in one barrier per
  repetition.
* **Loop 6** (general linear recurrence): outer steps of growing work, each
  terminated by a barrier — a large loop body relative to the barrier cost.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.errors import WorkloadError
from repro.isa.operations import Compute, Read
from repro.machine.manycore import Manycore
from repro.runner.registry import register_workload
from repro.sync.api import SyncFactory
from repro.workloads.base import WorkloadHandle

#: Cycles of floating-point work charged per vector element processed.
CYCLES_PER_ELEMENT = {2: 4, 3: 2, 6: 2}
#: Cap on the number of simulated outer steps of Loop 6.  The paper runs the
#: full recurrence; simulating thousands of barriers per point is unnecessary
#: for the trends, so longer vectors sample the recurrence and scale the work.
LOOP6_MAX_STEPS = 48


class LivermoreLoop(enum.IntEnum):
    """The three Livermore loops the paper evaluates."""

    ICCG = 2
    INNER_PRODUCT = 3
    LINEAR_RECURRENCE = 6


@register_workload("livermore")
def build_livermore_loop(
    machine: Manycore,
    loop: LivermoreLoop,
    vector_length: int,
    repetitions: int = 2,
    num_threads: Optional[int] = None,
) -> WorkloadHandle:
    """Register the chosen Livermore loop on ``machine``."""
    loop = LivermoreLoop(loop)
    if vector_length < 1:
        raise WorkloadError("vector length must be positive")
    if num_threads is None:
        num_threads = machine.config.num_cores
    program = machine.new_program(f"livermore{int(loop)}")
    sync = SyncFactory(program)
    barrier = sync.create_barrier(num_threads)
    reducer = sync.create_reducer()
    line_bytes = machine.config.cache.line_bytes
    per_element = CYCLES_PER_ELEMENT[int(loop)]

    def chunk_phase(ctx, elements: int):
        """Process ``elements`` vector elements owned by this thread."""
        share = max(0, elements // num_threads)
        if ctx.thread_id < elements % num_threads:
            share += 1
        if share == 0:
            return
        base = program.private_addr(ctx.thread_id, offset_words=1024)
        lines = max(1, (share * 8 + line_bytes - 1) // line_bytes)
        for line_index in range(min(lines, 64)):
            yield Read(base + line_index * line_bytes)
        yield Compute(share * per_element)

    def loop2_body(ctx):
        for _ in range(repetitions):
            active = vector_length
            while active >= 1:
                yield from chunk_phase(ctx, active)
                yield from barrier.wait(ctx)
                if active == 1:
                    break
                active //= 2
        return 0

    def loop3_body(ctx):
        for _ in range(repetitions):
            yield from chunk_phase(ctx, vector_length)
            yield from reducer.add(ctx, 1)
            yield from barrier.wait(ctx)
        return 0

    def loop6_body(ctx):
        steps = min(vector_length, LOOP6_MAX_STEPS)
        elements_per_step = max(1, vector_length // steps)
        for _ in range(repetitions):
            for step in range(1, steps + 1):
                # The recurrence's inner work grows with the step index.
                yield from chunk_phase(ctx, step * elements_per_step)
                yield from barrier.wait(ctx)
        return 0

    bodies = {
        LivermoreLoop.ICCG: loop2_body,
        LivermoreLoop.INNER_PRODUCT: loop3_body,
        LivermoreLoop.LINEAR_RECURRENCE: loop6_body,
    }
    body = bodies[loop]
    for _ in range(num_threads):
        program.add_thread(body)
    return WorkloadHandle(
        name=f"livermore-loop{int(loop)}",
        machine=machine,
        program=program,
        num_threads=num_threads,
        metadata={
            "iterations": repetitions,
            "vector_length": vector_length,
            "loop": int(loop),
        },
    )
