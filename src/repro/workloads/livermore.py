"""Parallelized Livermore loops 2, 3, and 6 (Section 6, Figure 8).

Sampson et al. [37] identify these three loops as the representative ones
with regard to synchronization; the paper parallelizes them with barriers and
sweeps the vector length.  The proxies here reproduce each loop's
synchronization structure:

* **Loop 2** (incomplete Cholesky conjugate gradient fragment): a series of
  passes over the vector in which the active portion halves every pass, with
  a barrier after each pass — many barriers with shrinking work, which is why
  it is the most barrier-sensitive of the three.
* **Loop 3** (inner product): each thread reduces its chunk, adds the partial
  sum into a shared accumulator, and synchronizes in one barrier per
  repetition.
* **Loop 6** (general linear recurrence): outer steps of growing work, each
  terminated by a barrier — a large loop body relative to the barrier cost.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.cpu.frames import START, Call, FrameBody, Op, Ret
from repro.errors import WorkloadError
from repro.isa.operations import Compute, Read
from repro.machine.manycore import Manycore
from repro.runner.registry import register_workload
from repro.sync.api import SyncFactory
from repro.sync.frames import barrier_wait, cell_fetch_add
from repro.workloads.base import WorkloadHandle

#: Cycles of floating-point work charged per vector element processed.
CYCLES_PER_ELEMENT = {2: 4, 3: 2, 6: 2}
#: Cap on the number of simulated outer steps of Loop 6.  The paper runs the
#: full recurrence; simulating thousands of barriers per point is unnecessary
#: for the trends, so longer vectors sample the recurrence and scale the work.
LOOP6_MAX_STEPS = 48


class LivermoreLoop(enum.IntEnum):
    """The three Livermore loops the paper evaluates."""

    ICCG = 2
    INNER_PRODUCT = 3
    LINEAR_RECURRENCE = 6


@register_workload("livermore")
def build_livermore_loop(
    machine: Manycore,
    loop: LivermoreLoop,
    vector_length: int,
    repetitions: int = 2,
    num_threads: Optional[int] = None,
) -> WorkloadHandle:
    """Register the chosen Livermore loop on ``machine``."""
    loop = LivermoreLoop(loop)
    if vector_length < 1:
        raise WorkloadError("vector length must be positive")
    if num_threads is None:
        num_threads = machine.config.num_cores
    program = machine.new_program(f"livermore{int(loop)}")
    sync = SyncFactory(program)
    barrier = sync.create_barrier(num_threads)
    reducer = sync.create_reducer()
    barrier_sid = barrier.sync_id
    reducer_sid = reducer.cell.sync_id
    line_bytes = machine.config.cache.line_bytes
    per_element = CYCLES_PER_ELEMENT[int(loop)]

    def _share_of(elements: int, thread_id: int) -> int:
        share = max(0, elements // num_threads)
        if thread_id < elements % num_threads:
            share += 1
        return share

    def chunk_phase(frame, value, env):
        """Process ``locals["elements"]`` vector elements owned by this thread."""
        L, label = frame.locals, frame.label
        tid = env.ctx.thread_id
        share = _share_of(L["elements"], tid)
        base = program.private_addr(tid, offset_words=1024)
        if label == START:
            if share == 0:
                return Ret(None)
            L["line"] = 0
            return Op(Read(base), "read")
        if label == "read":
            lines = max(1, (share * 8 + line_bytes - 1) // line_bytes)
            line = L["line"] + 1
            if line < min(lines, 64):
                L["line"] = line
                return Op(Read(base + line * line_bytes), "read")
            return Op(Compute(share * per_element), "computed")
        return Ret(None)

    def _chunk(elements: int, label: str) -> Call:
        return Call("livermore.chunk", {"elements": elements}, label)

    def loop2_body(frame, value, env):
        # Passes over a halving active portion, one barrier per pass.
        L, label = frame.locals, frame.label
        if label == START:
            if repetitions == 0:
                return Ret(0)
            L["rep"] = 0
            L["active"] = vector_length
            return _chunk(vector_length, "chunked")
        if label == "chunked":
            return barrier_wait(barrier_sid, "joined")
        # label == "joined"
        active = L["active"]
        if active > 1:
            active //= 2
            L["active"] = active
            return _chunk(active, "chunked")
        rep = L["rep"] + 1
        if rep < repetitions:
            L["rep"] = rep
            L["active"] = vector_length
            return _chunk(vector_length, "chunked")
        return Ret(0)

    def loop3_body(frame, value, env):
        # Chunk-reduce into the shared accumulator, one barrier per rep.
        L, label = frame.locals, frame.label
        if label == START:
            if repetitions == 0:
                return Ret(0)
            L["rep"] = 0
            return _chunk(vector_length, "chunked")
        if label == "chunked":
            return cell_fetch_add(reducer_sid, 1, "reduced")
        if label == "reduced":
            return barrier_wait(barrier_sid, "joined")
        # label == "joined"
        rep = L["rep"] + 1
        if rep < repetitions:
            L["rep"] = rep
            return _chunk(vector_length, "chunked")
        return Ret(0)

    steps = min(vector_length, LOOP6_MAX_STEPS)
    elements_per_step = max(1, vector_length // steps)

    def loop6_body(frame, value, env):
        # The recurrence's inner work grows with the step index.
        L, label = frame.locals, frame.label
        if label == START:
            if repetitions == 0:
                return Ret(0)
            L["rep"] = 0
            L["step"] = 1
            return _chunk(elements_per_step, "chunked")
        if label == "chunked":
            return barrier_wait(barrier_sid, "joined")
        # label == "joined"
        step = L["step"] + 1
        if step <= steps:
            L["step"] = step
            return _chunk(step * elements_per_step, "chunked")
        rep = L["rep"] + 1
        if rep < repetitions:
            L["rep"] = rep
            L["step"] = 1
            return _chunk(elements_per_step, "chunked")
        return Ret(0)

    bodies = {
        LivermoreLoop.ICCG: loop2_body,
        LivermoreLoop.INNER_PRODUCT: loop3_body,
        LivermoreLoop.LINEAR_RECURRENCE: loop6_body,
    }
    machine.register_frame_routine("livermore.chunk", chunk_phase)
    machine.register_frame_routine("livermore.body", bodies[loop])
    for _ in range(num_threads):
        program.add_thread(FrameBody("livermore.body"))
    return WorkloadHandle(
        name=f"livermore-loop{int(loop)}",
        machine=machine,
        program=program,
        num_threads=num_threads,
        metadata={
            "iterations": repetitions,
            "vector_length": vector_length,
            "loop": int(loop),
        },
    )
