"""Synthetic proxies of the SPLASH-2 and PARSEC applications (Figure 10).

The paper runs the full suites on Multi2Sim.  We cannot execute x86 binaries,
so each application is replaced by a synthetic proxy with the same
*synchronization profile*: how often it crosses a barrier, how often it takes
locks and how long it holds them, how much computation separates
synchronization points, and whether it performs shared reductions.  The
profiles below are calibrated from the paper's own characterization
(Section 7.4): streamcluster and the ocean codes are barrier-intensive;
raytrace and radiosity are lock-intensive; water-ns and fluidanimate mix
both; dedup and fluidanimate use lock arrays larger than the 16 KB BM (their
locks spill to regular memory); most of the remaining applications
synchronize too rarely for WiSync to matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cpu.frames import START, FrameBody, Op, Ret
from repro.errors import WorkloadError
from repro.isa.operations import Compute, Read
from repro.machine.manycore import Manycore
from repro.runner.registry import register_workload
from repro.sync.api import SyncFactory
from repro.sync.frames import barrier_wait, cell_fetch_add, lock_acquire, lock_release
from repro.workloads.base import WorkloadHandle


@dataclass(frozen=True)
class AppProfile:
    """Synchronization profile of one application."""

    name: str
    suite: str                      # "parsec" or "splash2"
    phases: int                     # synchronization phases per thread
    compute_per_phase: int          # cycles of computation per phase
    barriers_per_phase: int = 0     # barrier crossings per phase
    locks_per_phase: int = 0        # lock acquisitions per phase
    num_locks: int = 8              # distinct locks (contention spreads over them)
    critical_section_cycles: int = 30
    reductions_per_phase: int = 0
    shared_lines_per_phase: int = 4  # shared-data lines touched per phase

    def total_barriers(self) -> int:
        return self.phases * self.barriers_per_phase

    def total_lock_acquisitions(self) -> int:
        return self.phases * self.locks_per_phase


# ---------------------------------------------------------------------------
# Profiles.  compute_per_phase values are chosen so that, on the 64-core
# Baseline, synchronization-heavy applications spend most of their time in
# synchronization (large WiSync gains) while compute-bound ones do not —
# reproducing the shape of Figure 10.
# ---------------------------------------------------------------------------
APPLICATION_PROFILES: List[AppProfile] = [
    # PARSEC
    AppProfile("blackscholes", "parsec", phases=6, compute_per_phase=300000, barriers_per_phase=1),
    AppProfile("bodytrack", "parsec", phases=10, compute_per_phase=80000,
               barriers_per_phase=1, locks_per_phase=2, num_locks=16),
    AppProfile("canneal", "parsec", phases=8, compute_per_phase=100000, locks_per_phase=3,
               num_locks=32, critical_section_cycles=20),
    AppProfile("dedup", "parsec", phases=10, compute_per_phase=40000, locks_per_phase=6,
               num_locks=320, critical_section_cycles=40),
    AppProfile("facesim", "parsec", phases=8, compute_per_phase=200000, barriers_per_phase=1),
    AppProfile("ferret", "parsec", phases=8, compute_per_phase=150000, locks_per_phase=2,
               num_locks=16),
    AppProfile("fluidanimate", "parsec", phases=12, compute_per_phase=30000,
               barriers_per_phase=1, locks_per_phase=8, num_locks=400,
               critical_section_cycles=15),
    AppProfile("freqmine", "parsec", phases=8, compute_per_phase=150000, locks_per_phase=2,
               num_locks=16),
    AppProfile("streamcluster", "parsec", phases=30, compute_per_phase=90000,
               barriers_per_phase=2, reductions_per_phase=1),
    AppProfile("swaptions", "parsec", phases=6, compute_per_phase=300000),
    AppProfile("vips", "parsec", phases=8, compute_per_phase=200000, locks_per_phase=1,
               num_locks=8),
    AppProfile("x264", "parsec", phases=8, compute_per_phase=200000, locks_per_phase=1,
               num_locks=16),
    # SPLASH-2
    AppProfile("barnes", "splash2", phases=10, compute_per_phase=80000, barriers_per_phase=1,
               locks_per_phase=2, num_locks=64),
    AppProfile("cholesky", "splash2", phases=8, compute_per_phase=100000, locks_per_phase=2,
               num_locks=32),
    AppProfile("fft", "splash2", phases=8, compute_per_phase=120000, barriers_per_phase=1),
    AppProfile("fmm", "splash2", phases=10, compute_per_phase=80000, barriers_per_phase=1,
               locks_per_phase=2, num_locks=64),
    AppProfile("lu-c", "splash2", phases=12, compute_per_phase=100000, barriers_per_phase=1),
    AppProfile("lu-nc", "splash2", phases=12, compute_per_phase=120000, barriers_per_phase=1),
    AppProfile("ocean-c", "splash2", phases=24, compute_per_phase=120000, barriers_per_phase=2),
    AppProfile("ocean-nc", "splash2", phases=24, compute_per_phase=140000, barriers_per_phase=2),
    AppProfile("radiosity", "splash2", phases=16, compute_per_phase=8000, locks_per_phase=6,
               num_locks=12, critical_section_cycles=40),
    AppProfile("radix", "splash2", phases=10, compute_per_phase=80000, barriers_per_phase=1,
               reductions_per_phase=1),
    AppProfile("raytrace", "splash2", phases=16, compute_per_phase=12000, locks_per_phase=8,
               num_locks=8, critical_section_cycles=30),
    AppProfile("volrend", "splash2", phases=10, compute_per_phase=60000, barriers_per_phase=1,
               locks_per_phase=2, num_locks=16),
    AppProfile("water-ns", "splash2", phases=14, compute_per_phase=120000, barriers_per_phase=1,
               locks_per_phase=4, num_locks=16, critical_section_cycles=25),
    AppProfile("water-sp", "splash2", phases=10, compute_per_phase=100000, barriers_per_phase=1,
               locks_per_phase=1, num_locks=16),
]

_PROFILE_INDEX: Dict[str, AppProfile] = {profile.name: profile for profile in APPLICATION_PROFILES}


def application_names(suite: Optional[str] = None) -> List[str]:
    """Names of all modelled applications, optionally filtered by suite."""
    return [p.name for p in APPLICATION_PROFILES if suite is None or p.suite == suite]


def profile_by_name(name: str) -> AppProfile:
    if name not in _PROFILE_INDEX:
        raise WorkloadError(f"unknown application {name!r}; known: {sorted(_PROFILE_INDEX)}")
    return _PROFILE_INDEX[name]


def build_application(
    machine: Manycore,
    profile: AppProfile,
    num_threads: Optional[int] = None,
    phase_scale: float = 1.0,
) -> WorkloadHandle:
    """Register an application proxy on ``machine``.

    ``phase_scale`` shrinks the number of phases (keeping the profile's
    per-phase behaviour) so that sweep experiments such as the sensitivity
    study stay fast; 1.0 reproduces the full profile.
    """
    if num_threads is None:
        num_threads = machine.config.num_cores
    phases = max(1, int(round(profile.phases * phase_scale)))
    program = machine.new_program(profile.name)
    sync = SyncFactory(program)
    barrier = sync.create_barrier(num_threads) if profile.barriers_per_phase else None
    locks = sync.create_locks(profile.num_locks) if profile.locks_per_phase else []
    reducer = sync.create_reducer() if profile.reductions_per_phase else None
    shared_lines = [program.alloc_shared() for _ in range(32)]
    line_bytes = machine.config.cache.line_bytes
    barrier_sid = barrier.sync_id if barrier is not None else None
    lock_sids = [lock.sync_id for lock in locks]
    reducer_sid = reducer.cell.sync_id if reducer is not None else None

    def _lock_sid(tid: int, phase: int, acquisition: int) -> int:
        return lock_sids[(tid + phase + acquisition) % len(lock_sids)]

    def body(frame, value, env):
        L, label = frame.locals, frame.label
        tid = env.ctx.thread_id

        # The phase runs compute -> shared touches -> critical sections ->
        # reductions -> barriers; each helper advances to the next stage
        # when its counter is exhausted, mirroring the sequential loops of
        # the generator version.
        def begin_phase():
            # Compute portion of the phase, with a little per-thread jitter
            # so that arrivals are not perfectly synchronized.  (Called at
            # the same point per phase as the generator did, keeping the
            # rng stream identical.)
            compute = env.ctx.rng.jitter(profile.compute_per_phase, fraction=0.05)
            return Op(Compute(compute), "computed")

        def touches():
            touch = L["touch"]
            if touch < profile.shared_lines_per_phase:
                addr = shared_lines[(L["phase"] + touch + tid) % len(shared_lines)]
                return Op(Read(addr), "touched")
            return critical_sections()

        def critical_sections():
            acq = L["acq"]
            if acq < profile.locks_per_phase:
                return lock_acquire(_lock_sid(tid, L["phase"], acq), "acquired")
            return reductions()

        def reductions():
            if L["red"] < profile.reductions_per_phase:
                return cell_fetch_add(reducer_sid, 1, "reduced")
            return barriers()

        def barriers():
            if L["bar"] < profile.barriers_per_phase:
                return barrier_wait(barrier_sid, "joined")
            return end_phase()

        def end_phase():
            L["work"] += 1
            phase = L["phase"] + 1
            if phase < phases:
                L["phase"] = phase
                return begin_phase()
            return Ret(L["work"])

        if label == START:
            L["work"] = 0
            L["phase"] = 0
            return begin_phase()
        if label == "computed":
            L["touch"] = 0
            L["acq"] = 0
            L["red"] = 0
            L["bar"] = 0
            return touches()
        if label == "touched":
            L["touch"] += 1
            return touches()
        if label == "acquired":
            return Op(Compute(profile.critical_section_cycles), "cs_done")
        if label == "cs_done":
            return lock_release(_lock_sid(tid, L["phase"], L["acq"]), "released")
        if label == "released":
            L["acq"] += 1
            return critical_sections()
        if label == "reduced":
            L["red"] += 1
            return reductions()
        if label == "joined":
            L["bar"] += 1
            return barriers()
        return Ret(L["work"])

    machine.register_frame_routine("application.body", body)
    for _ in range(num_threads):
        program.add_thread(FrameBody("application.body"))
    return WorkloadHandle(
        name=profile.name,
        machine=machine,
        program=program,
        num_threads=num_threads,
        metadata={
            "iterations": phases,
            "suite": 1.0 if profile.suite == "parsec" else 2.0,
        },
    )


@register_workload("application")
def build_application_by_name(
    machine: Manycore,
    app: str,
    num_threads: Optional[int] = None,
    phase_scale: float = 1.0,
) -> WorkloadHandle:
    """Registry-addressable variant of :func:`build_application`.

    Takes the application *name* instead of an :class:`AppProfile` so that a
    :class:`~repro.runner.spec.RunSpec` can carry it as a JSON parameter.
    """
    return build_application(
        machine, profile_by_name(app), num_threads=num_threads, phase_scale=phase_scale
    )
