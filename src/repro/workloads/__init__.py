"""Workloads used in the paper's evaluation (Table 3).

* Barrier kernels: TightLoop and Livermore loops 2, 3, 6.
* CAS kernels: FIFO, LIFO, ADD lock-free structures.
* Application suites: synthetic proxies of SPLASH-2 and PARSEC calibrated to
  each application's synchronization profile (see DESIGN.md substitution 2).

Every workload is a *builder*: it takes a :class:`~repro.machine.manycore.Manycore`,
registers a program and its threads, and returns a small handle describing
what to measure.
"""

from repro.workloads.base import WorkloadHandle
from repro.workloads.cas_kernels import CasKernelKind, build_cas_kernel
from repro.workloads.contention_suite import (
    SCENARIOS,
    ScenarioInfo,
    build_barrier_storm,
    build_mixed_phases,
    build_pc_ring,
    build_rwlock,
    build_work_steal,
    scenario_info,
    scenario_names,
)
from repro.workloads.faults import build_fault_probe
from repro.workloads.livermore import LivermoreLoop, build_livermore_loop
from repro.workloads.synthetic_apps import (
    APPLICATION_PROFILES,
    AppProfile,
    application_names,
    build_application,
    build_application_by_name,
    profile_by_name,
)
from repro.workloads.tightloop import build_tightloop

__all__ = [
    "WorkloadHandle",
    "build_tightloop",
    "LivermoreLoop",
    "build_livermore_loop",
    "CasKernelKind",
    "build_cas_kernel",
    "AppProfile",
    "APPLICATION_PROFILES",
    "application_names",
    "profile_by_name",
    "build_application",
    "SCENARIOS",
    "ScenarioInfo",
    "scenario_names",
    "scenario_info",
    "build_pc_ring",
    "build_rwlock",
    "build_work_steal",
    "build_barrier_storm",
    "build_mixed_phases",
    "build_fault_probe",
]
