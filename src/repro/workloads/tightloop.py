"""TightLoop barrier kernel (Section 6).

Each thread adds up the contents of a 50-element private array into a local
variable and then synchronizes in a barrier; the process repeats in a loop.
This is the paper's most demanding barrier environment and the workload
behind Figure 7.

The body runs on the resumable-frame runtime (:mod:`repro.cpu.frames`):
thread progress is a label plus integer locals, so a checkpoint of a fig7
run restores natively in O(1) instead of replaying the event history.
"""

from __future__ import annotations

from typing import Optional

from repro.cpu.frames import START, FrameBody, Op, Ret
from repro.isa.operations import Compute, Read
from repro.machine.manycore import Manycore
from repro.runner.registry import register_workload
from repro.sync.api import SyncFactory
from repro.sync.frames import barrier_wait
from repro.workloads.base import WorkloadHandle

#: Elements in each thread's private array (from the paper's description).
ARRAY_ELEMENTS = 50
#: Cycles of arithmetic per element on the 2-issue core (load-add chain).
CYCLES_PER_ELEMENT = 1


@register_workload("tightloop")
def build_tightloop(
    machine: Manycore,
    iterations: int = 10,
    num_threads: Optional[int] = None,
    array_elements: int = ARRAY_ELEMENTS,
) -> WorkloadHandle:
    """Register the TightLoop kernel on ``machine`` and return its handle."""
    if num_threads is None:
        num_threads = machine.config.num_cores
    program = machine.new_program("tightloop")
    sync = SyncFactory(program)
    barrier = sync.create_barrier(num_threads)
    barrier_sid = barrier.sync_id
    line_bytes = machine.config.cache.line_bytes
    lines_touched = max(1, (array_elements * 8 + line_bytes - 1) // line_bytes)
    compute_cycles = array_elements * CYCLES_PER_ELEMENT

    def body(frame, value, env):
        # Walk the private array line by line (it stays L1-resident after
        # the first iteration), charge one cycle of arithmetic per element,
        # then join the barrier; repeat for every iteration.
        L, label = frame.locals, frame.label
        base = program.private_addr(env.ctx.thread_id)
        if label == START:
            if iterations == 0:
                return Ret(0)
            L["iter"] = 0
            L["line"] = 0
            L["checksum"] = 0
            return Op(Read(base), "read")
        if label == "read":
            L["checksum"] += value
            line = L["line"] + 1
            if line < lines_touched:
                L["line"] = line
                return Op(Read(base + line * line_bytes), "read")
            return Op(Compute(compute_cycles), "computed")
        if label == "computed":
            return barrier_wait(barrier_sid, "joined")
        # label == "joined"
        iteration = L["iter"] + 1
        if iteration < iterations:
            L["iter"] = iteration
            L["line"] = 0
            return Op(Read(base), "read")
        return Ret(L["checksum"])

    machine.register_frame_routine("tightloop.body", body)
    for _ in range(num_threads):
        program.add_thread(FrameBody("tightloop.body"))
    return WorkloadHandle(
        name="tightloop",
        machine=machine,
        program=program,
        num_threads=num_threads,
        metadata={"iterations": iterations, "array_elements": array_elements},
    )
