"""TightLoop barrier kernel (Section 6).

Each thread adds up the contents of a 50-element private array into a local
variable and then synchronizes in a barrier; the process repeats in a loop.
This is the paper's most demanding barrier environment and the workload
behind Figure 7.
"""

from __future__ import annotations

from typing import Optional

from repro.isa.operations import Compute, Read
from repro.machine.manycore import Manycore
from repro.runner.registry import register_workload
from repro.sync.api import SyncFactory
from repro.workloads.base import WorkloadHandle

#: Elements in each thread's private array (from the paper's description).
ARRAY_ELEMENTS = 50
#: Cycles of arithmetic per element on the 2-issue core (load-add chain).
CYCLES_PER_ELEMENT = 1


@register_workload("tightloop")
def build_tightloop(
    machine: Manycore,
    iterations: int = 10,
    num_threads: Optional[int] = None,
    array_elements: int = ARRAY_ELEMENTS,
) -> WorkloadHandle:
    """Register the TightLoop kernel on ``machine`` and return its handle."""
    if num_threads is None:
        num_threads = machine.config.num_cores
    program = machine.new_program("tightloop")
    sync = SyncFactory(program)
    barrier = sync.create_barrier(num_threads)
    line_bytes = machine.config.cache.line_bytes
    lines_touched = max(1, (array_elements * 8 + line_bytes - 1) // line_bytes)

    def body(ctx):
        base = program.private_addr(ctx.thread_id)
        checksum = 0
        for _ in range(iterations):
            # Walk the private array line by line (it stays L1-resident after
            # the first iteration) and charge one cycle of arithmetic per
            # element.
            for line_index in range(lines_touched):
                value = yield Read(base + line_index * line_bytes)
                checksum += value
            yield Compute(array_elements * CYCLES_PER_ELEMENT)
            yield from barrier.wait(ctx)
        return checksum

    for _ in range(num_threads):
        program.add_thread(body)
    return WorkloadHandle(
        name="tightloop",
        machine=machine,
        program=program,
        num_threads=num_threads,
        metadata={"iterations": iterations, "array_elements": array_elements},
    )
