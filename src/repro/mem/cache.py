"""Set-associative cache tag array with LRU replacement.

Only tags are modelled (values live in the shared functional store of the
memory system); the array answers hit/miss queries and produces victims on
fills, which is all the timing model needs.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

from repro.errors import ConfigurationError


class CacheArray:
    """A tag array with ``num_sets`` sets of ``associativity`` ways (LRU)."""

    def __init__(self, num_sets: int, associativity: int, line_bytes: int, name: str = "cache") -> None:
        if num_sets <= 0 or associativity <= 0:
            raise ConfigurationError("cache geometry must be positive")
        self.num_sets = num_sets
        self.associativity = associativity
        self.line_bytes = line_bytes
        self.name = name
        # set index -> OrderedDict(line_number -> True), most recent last
        self._sets: Dict[int, OrderedDict] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------ api
    # The set probe (line % num_sets, get-or-create) is inlined in each
    # method: lookup/fill run once per modelled memory access, and a helper
    # call was pure overhead.  Only fill creates sets; the read-only paths
    # treat a missing set as a miss.
    def lookup(self, line: int, touch: bool = True) -> bool:
        """Return True on hit; update LRU order when ``touch`` is set."""
        entries = self._sets.get(line % self.num_sets)
        if entries is not None and line in entries:
            if touch:
                entries.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def contains(self, line: int) -> bool:
        """Hit/miss check without disturbing LRU order or statistics."""
        entries = self._sets.get(line % self.num_sets)
        return entries is not None and line in entries

    def fill(self, line: int) -> Optional[int]:
        """Insert a line; return the evicted line number if one was displaced."""
        index = line % self.num_sets
        entries = self._sets.get(index)
        if entries is None:
            entries = self._sets[index] = OrderedDict()
        victim = None
        if line in entries:
            entries.move_to_end(line)
            return None
        if len(entries) >= self.associativity:
            victim, _ = entries.popitem(last=False)
            self.evictions += 1
        entries[line] = True
        return victim

    def invalidate(self, line: int) -> bool:
        """Remove a line (coherence invalidation); returns True if present."""
        entries = self._sets.get(line % self.num_sets)
        if entries is not None and line in entries:
            del entries[line]
            return True
        return False

    def resident_lines(self) -> List[int]:
        lines: List[int] = []
        for entries in self._sets.values():
            lines.extend(entries.keys())
        return lines

    @property
    def occupancy(self) -> int:
        return sum(len(entries) for entries in self._sets.values())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
