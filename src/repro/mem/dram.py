"""Off-chip DRAM model: four memory controllers with a fixed round trip.

The paper charges a 110-cycle round trip to off-chip memory.  Controllers
serialize requests, providing a mild bandwidth limit that matters only for
cache-cold phases of the workloads.
"""

from __future__ import annotations

from typing import Dict

from repro.config import MemoryConfig
from repro.sim.stats import StatsRegistry


class DramModel:
    """Latency model for the off-chip memory behind the controllers."""

    #: Cycles a controller is occupied per request (burst transfer of a line).
    CONTROLLER_OCCUPANCY = 4

    def __init__(self, config: MemoryConfig, stats: StatsRegistry) -> None:
        self.config = config
        self.stats = stats
        self._controller_free: Dict[int, int] = {}
        self._accesses_counter = stats.counter("dram/accesses")

    def access(self, now: int, controller: int) -> int:
        """Issue a line fetch at cycle ``now``; return its completion cycle."""
        controller = controller % self.config.controllers
        start = max(now, self._controller_free.get(controller, 0))
        self._controller_free[controller] = start + self.CONTROLLER_OCCUPANCY
        self._accesses_counter.add()
        return start + self.config.dram_round_trip

    def reset(self) -> None:
        self._controller_free.clear()
