"""Address mapping: lines, home L2 banks, and memory controllers."""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CacheConfig, MemoryConfig


@dataclass(frozen=True)
class AddressMap:
    """Maps word addresses to cache lines, home banks, and controllers.

    The shared L2 is distributed in per-core banks; lines are interleaved
    across banks by line address, which is the standard arrangement and the
    one the paper assumes ("Shared with per-core 512KB WB banks").
    """

    cache: CacheConfig
    memory: MemoryConfig
    num_cores: int

    def line_of(self, addr: int) -> int:
        """Line-aligned address containing ``addr``."""
        return addr // self.cache.line_bytes

    def line_base(self, addr: int) -> int:
        return self.line_of(addr) * self.cache.line_bytes

    def word_of(self, addr: int, size: int = 8) -> int:
        """Word-aligned address (default 8-byte words)."""
        return (addr // size) * size

    def home_bank(self, addr: int) -> int:
        """Core id whose L2 bank is the home of the line containing ``addr``."""
        return self.line_of(addr) % self.num_cores

    def memory_controller(self, addr: int) -> int:
        """Memory controller serving the line containing ``addr``."""
        return self.line_of(addr) % self.memory.controllers

    def same_line(self, addr_a: int, addr_b: int) -> bool:
        return self.line_of(addr_a) == self.line_of(addr_b)
