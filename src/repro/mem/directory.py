"""MOESI-style directory state tracked per cache line.

The timing model only needs to know, for each line: is there a dirty owner,
which cores hold a copy, and where the home bank is.  That is enough to
charge the right number of mesh traversals and invalidations for every
transaction, which is what produces the paper's conventional-synchronization
costs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Set


class LineState(enum.Enum):
    """Directory-visible state of a line."""

    INVALID = "I"
    SHARED = "S"        # one or more clean copies
    MODIFIED = "M"      # exactly one dirty owner


@dataclass
class DirectoryEntry:
    """Sharer/owner bookkeeping for one line."""

    state: LineState = LineState.INVALID
    owner: Optional[int] = None
    sharers: Set[int] = field(default_factory=set)

    def has_copy(self, core: int) -> bool:
        return core in self.sharers or core == self.owner


class Directory:
    """Per-line directory for the whole chip (lines are homed by address)."""

    def __init__(self) -> None:
        self._entries: Dict[int, DirectoryEntry] = {}

    def entry(self, line: int) -> DirectoryEntry:
        entry = self._entries.get(line)
        if entry is None:
            entry = self._entries[line] = DirectoryEntry()
        return entry

    def lookup(self, line: int) -> Optional[DirectoryEntry]:
        return self._entries.get(line)

    # --------------------------------------------------------- transitions
    def record_read(
        self, line: int, core: int, entry: Optional[DirectoryEntry] = None
    ) -> DirectoryEntry:
        """Core obtains a shared copy.  A dirty owner (if any) is downgraded.

        Callers that already hold the line's entry pass it to skip the
        second lookup (the entry dict probe sits on the per-access hot path).
        """
        if entry is None:
            entry = self.entry(line)
        if entry.state is LineState.MODIFIED and entry.owner is not None:
            entry.sharers.add(entry.owner)
            entry.owner = None
        entry.sharers.add(core)
        entry.state = LineState.SHARED
        return entry

    def record_write(
        self, line: int, core: int, entry: Optional[DirectoryEntry] = None
    ) -> DirectoryEntry:
        """Core obtains exclusive ownership; all other copies are invalidated."""
        if entry is None:
            entry = self.entry(line)
        entry.sharers = set()
        entry.owner = core
        entry.state = LineState.MODIFIED
        return entry

    def invalidation_targets(
        self, line: int, requester: int, entry: Optional[DirectoryEntry] = None
    ) -> Set[int]:
        """Cores whose copies must be invalidated before ``requester`` writes."""
        if entry is None:
            entry = self.entry(line)
        targets = set(entry.sharers)
        if entry.owner is not None:
            targets.add(entry.owner)
        targets.discard(requester)
        return targets

    def evict(self, line: int, core: int) -> None:
        """A core silently dropped its copy (L1 eviction)."""
        entry = self._entries.get(line)
        if entry is None:
            return
        entry.sharers.discard(core)
        if entry.owner == core:
            entry.owner = None
            entry.state = LineState.SHARED if entry.sharers else LineState.INVALID
        elif not entry.sharers and entry.owner is None:
            entry.state = LineState.INVALID

    def sharer_count(self, line: int) -> int:
        entry = self._entries.get(line)
        if entry is None:
            return 0
        count = len(entry.sharers)
        if entry.owner is not None and entry.owner not in entry.sharers:
            count += 1
        return count
