"""Cache hierarchy and directory-based coherence substrate.

Regular (non-broadcast) variables live here: private L1 caches, a shared L2
distributed in per-core banks, a MOESI-style directory, and off-chip DRAM
behind four memory controllers (Table 1).  The model is transaction level:
each access computes a completion cycle from cache state, directory state,
mesh distance, and serialization at the home bank.
"""

from repro.mem.address import AddressMap
from repro.mem.cache import CacheArray
from repro.mem.directory import Directory, DirectoryEntry, LineState
from repro.mem.dram import DramModel
from repro.mem.hierarchy import MemorySystem

__all__ = [
    "AddressMap",
    "CacheArray",
    "Directory",
    "DirectoryEntry",
    "LineState",
    "DramModel",
    "MemorySystem",
]
