"""The full cached-memory hierarchy: L1s, distributed L2, directory, DRAM.

This is the substrate used by *regular* variables (and by all
synchronization in the Baseline and Baseline+ configurations).  It is a
transaction-level model: every access immediately computes its completion
cycle from current cache/directory state, mesh distances, and serialization
at the home L2 bank, and updates that state.  Spin-waiting is expressed with
:meth:`MemorySystem.wait_until`, which models invalidation-based waiting:
waiters are re-notified when a writer updates the location and their refills
serialize at the home bank — the effect that makes centralized barriers and
contended locks expensive at high core counts.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.config import MachineConfig
from repro.errors import MemoryError_
from repro.isa.operations import RmwKind
from repro.mem.address import AddressMap
from repro.mem.cache import CacheArray
from repro.mem.directory import Directory, DirectoryEntry, LineState
from repro.mem.dram import DramModel
from repro.noc.mesh import MeshNetwork
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry
from repro.sim.trace import Tracer

#: Cycles the home bank is occupied serving each refill to a waiting spinner.
REFILL_SERIALIZATION = 3
#: Cycles the home bank needs to issue each invalidation message.
INVALIDATION_ISSUE = 1
#: Request/response message sizes in bits (address-only vs full line).
REQUEST_BITS = 64
LINE_BITS = 512


class _Waiter:
    __slots__ = ("core", "predicate", "callback")

    def __init__(
        self,
        core: int,
        predicate: Callable[[int], bool],
        callback: Callable[[int], None],
    ) -> None:
        self.core = core
        self.predicate = predicate
        self.callback = callback


class MemorySystem:
    """Timing + functional model of the coherent cached memory."""

    def __init__(
        self,
        sim: Simulator,
        config: MachineConfig,
        mesh: MeshNetwork,
        stats: Optional[StatsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.mesh = mesh
        self.stats = stats if stats is not None else StatsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.address_map = AddressMap(config.cache, config.memory, config.num_cores)
        self.directory = Directory()
        self.dram = DramModel(config.memory, self.stats)
        self._l1 = [
            CacheArray(
                num_sets=config.cache.l1_sets,
                associativity=config.cache.l1_assoc,
                line_bytes=config.cache.line_bytes,
                name=f"l1[{core}]",
            )
            for core in range(config.num_cores)
        ]
        self._values: Dict[int, int] = {}
        self._l2_resident: set = set()
        self._line_busy_until: Dict[int, int] = {}
        self._waiters: Dict[int, List[_Waiter]] = {}
        # Flyweight stat handles, bound once: memory operations are the
        # hottest call sites in the whole simulator, and per-access
        # string-keyed registry lookups are pure overhead.
        # Hot-path constants hoisted out of the config object chains.
        self._line_bytes = config.cache.line_bytes
        self._l1_latency = config.cache.l1_latency
        self._l2_latency = config.cache.l2_latency
        self._num_cores = config.num_cores
        self._num_controllers = config.memory.controllers
        stats = self.stats
        self._reads_counter = stats.counter("mem/reads")
        self._read_misses_counter = stats.counter("mem/read_misses")
        self._writes_counter = stats.counter("mem/writes")
        self._write_misses_counter = stats.counter("mem/write_misses")
        self._atomics_counter = stats.counter("mem/atomics")
        self._spin_waits_counter = stats.counter("mem/spin_waits")
        self._spin_wakeups_counter = stats.counter("mem/spin_wakeups")
        self._l2_fills_counter = stats.counter("mem/l2_fills")
        self._owner_forwards_counter = stats.counter("mem/owner_forwards")
        self._invalidations_counter = stats.counter("mem/invalidations")

    # ------------------------------------------------------------ functional
    def peek(self, addr: int) -> int:
        """Functional read without timing effects (for tests and debugging)."""
        return self._values.get(self.address_map.word_of(addr), 0)

    def poke(self, addr: int, value: int) -> None:
        """Functional write without timing effects (workload initialization)."""
        self._values[self.address_map.word_of(addr)] = value

    def l1_cache(self, core: int) -> CacheArray:
        return self._l1[core]

    # ----------------------------------------------------------------- reads
    def read(self, core: int, addr: int, size: int = 8) -> Tuple[int, int]:
        """Load; returns ``(value, completion_cycle)``."""
        self._check_core(core)
        now = self.sim.now
        word = (addr // size) * size
        line = addr // self._line_bytes
        self._reads_counter.value += 1
        entry = self.directory.entry(line)
        if self._l1[core].lookup(line) and entry.has_copy(core):
            completion = now + self._l1_latency
            if self.tracer.enabled:
                self.tracer.emit(now, f"core{core}", "mem.read.hit", f"addr={addr:#x}")
            return self._values.get(word, 0), completion
        self._read_misses_counter.value += 1
        completion = self._miss_transaction(core, line, now, for_write=False, entry=entry)
        self._fill_l1(core, line)
        self.directory.record_read(line, core, entry)
        if self.tracer.enabled:
            self.tracer.emit(now, f"core{core}", "mem.read.miss", f"addr={addr:#x}")
        return self._values.get(word, 0), completion

    # ---------------------------------------------------------------- writes
    def write(self, core: int, addr: int, value: int, size: int = 8) -> int:
        """Store; returns the completion cycle.  Waiters are re-checked."""
        self._check_core(core)
        now = self.sim.now
        word = (addr // size) * size
        line = addr // self._line_bytes
        self._writes_counter.value += 1
        entry = self.directory.entry(line)
        if (
            entry.state is LineState.MODIFIED
            and entry.owner == core
            and self._l1[core].lookup(line)
        ):
            completion = now + self._l1_latency
        else:
            self._write_misses_counter.value += 1
            completion = self._miss_transaction(core, line, now, for_write=True, entry=entry)
            self._fill_l1(core, line)
        self.directory.record_write(line, core, entry)
        self._values[word] = value
        if self.tracer.enabled:
            self.tracer.emit(now, f"core{core}", "mem.write", f"addr={addr:#x} value={value}")
        if word in self._waiters:
            self._notify_waiters(word, value, completion)
        return completion

    # --------------------------------------------------------------- atomics
    def atomic(
        self,
        core: int,
        addr: int,
        kind: RmwKind,
        operand: int = 1,
        expected: int = 0,
    ) -> Tuple[int, bool, int]:
        """Atomic RMW; returns ``(old_value, success, completion_cycle)``.

        Every atomic obtains exclusive ownership of the line at the home
        bank, so contended atomics on the same line serialize there — which
        is exactly why CAS-based synchronization struggles at high core
        counts in the Baseline configurations.
        """
        self._check_core(core)
        now = self.sim.now
        word = (addr // 8) * 8
        line = addr // self._line_bytes
        self._atomics_counter.value += 1
        entry = self.directory.entry(line)
        if (
            entry.state is LineState.MODIFIED
            and entry.owner == core
            and self._l1[core].lookup(line)
        ):
            completion = now + self._l1_latency
        else:
            completion = self._miss_transaction(core, line, now, for_write=True, entry=entry)
            self._fill_l1(core, line)
        self.directory.record_write(line, core, entry)
        old = self._values.get(word, 0)
        new, success = apply_rmw(kind, old, operand, expected)
        if success:
            self._values[word] = new
            if word in self._waiters:
                self._notify_waiters(word, new, completion)
        if self.tracer.enabled:
            self.tracer.emit(
                now, f"core{core}", "mem.atomic", f"addr={addr:#x} kind={kind.value} old={old}"
            )
        return old, success, completion

    # ----------------------------------------------------------- spin waits
    def wait_until(
        self,
        core: int,
        addr: int,
        predicate: Callable[[int], bool],
        callback: Callable[[int], None],
    ) -> None:
        """Invoke ``callback(value)`` once ``predicate(value)`` holds.

        If it already holds, the callback is scheduled after an L1-hit
        latency (the spinner re-reads its cached copy).  Otherwise the waiter
        is parked and woken by the write that satisfies the predicate, with
        refill latency plus serialization among simultaneously woken waiters.
        """
        self._check_core(core)
        word = self.address_map.word_of(addr)
        value = self._values.get(word, 0)
        if predicate(value):
            self.sim.schedule(self.config.cache.l1_latency, callback, value)
            return
        # Spinning keeps a shared copy resident so the writer must invalidate it.
        line = self.address_map.line_of(addr)
        self._fill_l1(core, line)
        self.directory.record_read(line, core)
        self._waiters.setdefault(word, []).append(
            _Waiter(core=core, predicate=predicate, callback=callback)
        )
        self._spin_waits_counter.add()

    def waiter_count(self, addr: int) -> int:
        """Number of parked spinners on a word (useful for tests)."""
        return len(self._waiters.get(self.address_map.word_of(addr), []))

    # ---------------------------------------------------------------- internal
    def _notify_waiters(self, word: int, value: int, write_completion: int) -> None:
        waiters = self._waiters.get(word)
        if not waiters:
            return
        still_waiting: List[_Waiter] = []
        woken: List[_Waiter] = []
        for waiter in waiters:
            if waiter.predicate(value):
                woken.append(waiter)
            else:
                still_waiting.append(waiter)
        if still_waiting:
            self._waiters[word] = still_waiting
        else:
            self._waiters.pop(word, None)
        if not woken:
            return
        line = word // self.config.cache.line_bytes
        home = self.address_map.home_bank(word)
        for index, waiter in enumerate(woken):
            # Invalidate + refill: the spinner's copy was invalidated by the
            # write; it re-fetches the line from the home bank.  Refills are
            # served one at a time by the bank.
            flight = self.mesh.flight_latency(home, waiter.core, LINE_BITS)
            wake_cycle = (
                write_completion
                + self.config.cache.l2_latency
                + flight
                + index * REFILL_SERIALIZATION
            )
            delay = max(0, wake_cycle - self.sim.now)
            self.sim.schedule(delay, waiter.callback, value)
            self._spin_wakeups_counter.add()

    def _miss_transaction(
        self,
        core: int,
        line: int,
        now: int,
        for_write: bool,
        entry: Optional["DirectoryEntry"] = None,
    ) -> int:
        """Timing of a miss/upgrade transaction through the home bank."""
        # line % num_cores == AddressMap.home_bank(line * line_bytes); the
        # direct form skips re-deriving the line from a synthesized address.
        home = line % self._num_cores
        unicast = self.mesh.unicast
        # Miss detected in L1, request travels to the home bank.
        t = now + self._l1_latency
        t = unicast(t, core, home, REQUEST_BITS)
        # Conflicting transactions on the same line serialize at the home bank.
        busy = self._line_busy_until.get(line, 0)
        if busy > t:
            t = busy
        # L2 lookup; first touch of a line comes from DRAM.
        if line in self._l2_resident:
            t += self._l2_latency
        else:
            t = self.dram.access(t, line % self._num_controllers)
            self._l2_resident.add(line)
            self._l2_fills_counter.value += 1
        if entry is None:
            entry = self.directory.entry(line)
        # Fetch the dirty copy from a remote owner if there is one.
        if entry.state is LineState.MODIFIED and entry.owner is not None and entry.owner != core:
            t = unicast(t, home, entry.owner, REQUEST_BITS)
            t += self._l1_latency
            t = unicast(t, entry.owner, home, LINE_BITS)
            self._owner_forwards_counter.value += 1
        # Writes must invalidate every other copy and collect acks.
        if for_write:
            targets = self.directory.invalidation_targets(line, core, entry)
            if targets:
                ack_time = t
                for index, target in enumerate(sorted(targets)):
                    issue = t + index * INVALIDATION_ISSUE
                    arrive = issue + self.mesh.flight_latency(home, target, REQUEST_BITS)
                    self._l1[target].invalidate(line)
                    ack = arrive + self.mesh.flight_latency(target, home, REQUEST_BITS)
                    ack_time = max(ack_time, ack)
                    self._invalidations_counter.add()
                t = ack_time
        self._line_busy_until[line] = t
        # Data/ownership grant returns to the requester.
        return unicast(t, home, core, LINE_BITS)

    def _fill_l1(self, core: int, line: int) -> None:
        victim = self._l1[core].fill(line)
        if victim is not None:
            self.directory.evict(victim, core)

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.config.num_cores:
            raise MemoryError_(f"core {core} out of range")


def apply_rmw(kind: RmwKind, old: int, operand: int, expected: int) -> Tuple[int, bool]:
    """Functional semantics of the RMW kinds; returns ``(new_value, success)``."""
    if kind is RmwKind.TEST_AND_SET:
        return 1, True
    if kind is RmwKind.FETCH_AND_INC:
        return old + 1, True
    if kind is RmwKind.FETCH_AND_ADD:
        return old + operand, True
    if kind is RmwKind.SWAP:
        return operand, True
    if kind is RmwKind.COMPARE_AND_SWAP:
        if old == expected:
            return operand, True
        return old, False
    raise MemoryError_(f"unsupported RMW kind {kind!r}")
