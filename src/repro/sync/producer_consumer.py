"""Single-producer / single-consumer channel (Section 4.3.4).

The producer writes a 4-word payload and sets a full/empty flag; the
consumer waits for the flag, reads the payload, and clears the flag.  On
WiSync both sides use Bulk stores/loads so the payload moves in a single
15-cycle wireless message; on conventional machines the payload moves as
ordinary cached stores and loads.
"""

from __future__ import annotations

from typing import Generator, List, Sequence, Tuple

from repro.cpu.thread import ThreadContext
from repro.errors import WorkloadError
from repro.isa.predicates import Eq
from repro.isa.operations import (
    BmBulkLoad,
    BmBulkStore,
    BmLoad,
    BmStore,
    BmWaitUntil,
    Read,
    WaitUntil,
    Write,
)


class ProducerConsumerChannel:
    """One full/empty-flag slot carrying four 64-bit words."""

    def __init__(self, data_addr: int, flag_addr: int, wireless: bool) -> None:
        self.data_addr = data_addr
        self.flag_addr = flag_addr
        self.wireless = wireless

    # -------------------------------------------------------------- producer
    def produce(self, ctx: ThreadContext, values: Sequence[int]) -> Generator:
        """Publish four words; waits until the previous payload was consumed."""
        payload: Tuple[int, int, int, int] = self._payload(values)
        if self.wireless:
            yield BmWaitUntil(self.flag_addr, Eq(0))
            yield BmBulkStore(self.data_addr, payload)
            yield BmStore(self.flag_addr, 1)
        else:
            yield WaitUntil(self.flag_addr, Eq(0))
            for offset, value in enumerate(payload):
                yield Write(self.data_addr + offset * 8, value)
            yield Write(self.flag_addr, 1)

    # -------------------------------------------------------------- consumer
    def consume(self, ctx: ThreadContext) -> Generator:
        """Wait for a payload, read it, and mark the slot empty; returns it."""
        if self.wireless:
            yield BmWaitUntil(self.flag_addr, Eq(1))
            values = yield BmBulkLoad(self.data_addr)
            yield BmStore(self.flag_addr, 0)
            return tuple(values)
        yield WaitUntil(self.flag_addr, Eq(1))
        values: List[int] = []
        for offset in range(4):
            value = yield Read(self.data_addr + offset * 8)
            values.append(value)
        yield Write(self.flag_addr, 0)
        return tuple(values)

    # ------------------------------------------------------------- internals
    @staticmethod
    def _payload(values: Sequence[int]) -> Tuple[int, int, int, int]:
        values = tuple(values)
        if len(values) != 4:
            raise WorkloadError("producer/consumer payloads are exactly four words")
        return values  # type: ignore[return-value]
