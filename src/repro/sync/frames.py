"""Frame routines for the synchronization primitives.

Each routine here is the resumable-frame port of one generator method from
:mod:`repro.sync` — same operations, in the same order, with the same
results consumed the same way, so a frames-mode workload produces a
bit-identical event stream to its generator twin (the golden suite pins
this).  The difference is purely representational: progress lives in a
frame's ``label`` + plain-data ``locals`` instead of a live generator
frame, which is what makes it natively checkpointable.

Conventions:

* Every routine takes ``{"sid": <sync_id>}`` (plus call arguments) in its
  locals and resolves the primitive through ``env.sync(sid)`` — frames
  never hold the primitive object itself.
* Methods that exist on several primitive types (``barrier.wait``,
  ``lock.acquire``) are one routine dispatching on the primitive's type,
  so workload code does not need to know which Table 2 variant it got.
* Tuple-valued operation results (``AtomicOp`` → ``(old, success)``) are
  unpacked inside the step; only scalars ever land in locals.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.cpu.frames import START, Call, Frame, FrameEnv, Op, Ret
from repro.errors import SimulationError, WorkloadError
from repro.isa.operations import (
    AtomicOp,
    BmLoad,
    BmRmw,
    BmStore,
    BmWaitUntil,
    Read,
    RmwKind,
    ToneStore,
    ToneWait,
    WaitUntil,
    Write,
)
from repro.isa.predicates import Eq, Ne
from repro.sync.barriers import (
    CentralizedBarrier,
    ToneBarrier,
    TournamentBarrier,
    WirelessBarrier,
)
from repro.sync.cells import BroadcastCell, CachedCell
from repro.sync.locks import CasSpinLock, McsLock, WirelessLock


# ---------------------------------------------------------------- barriers
def _centralized_wait(frame: Frame, value: Any, env: FrameEnv, b: CentralizedBarrier):
    L, label = frame.locals, frame.label
    if label == START:
        L["sense"] = b._toggle_sense(env.ctx.thread_id)
        return Op(Read(b.count_addr), "count")
    if label == "count":
        return Op(
            AtomicOp(
                b.count_addr, RmwKind.COMPARE_AND_SWAP, operand=value + 1, expected=value
            ),
            "cas",
        )
    if label == "cas":
        old, success = value
        if not success:
            return Op(Read(b.count_addr), "count")
        if old == b.num_threads - 1:
            return Op(Write(b.count_addr, 0), "wrote_count")
        return Op(WaitUntil(b.release_addr, Eq(L["sense"])), "done")
    if label == "wrote_count":
        return Op(Write(b.release_addr, L["sense"]), "done")
    return Ret(None)


def _tournament_arrivals(L: Dict[str, Any], b: TournamentBarrier, children, tid: int):
    i = L["i"]
    if i < len(children):
        return Op(WaitUntil(b.arrival_addrs[children[i]], Eq(L["sense"])), "child_arrived")
    if tid != 0:
        return Op(Write(b.arrival_addrs[tid], L["sense"]), "wrote_own")
    L["i"] = 0
    return _tournament_wakeups(L, b, children)


def _tournament_wakeups(L: Dict[str, Any], b: TournamentBarrier, children):
    i = L["i"]
    if i < len(children):
        return Op(Write(b.wakeup_addrs[children[i]], L["sense"]), "wrote_child")
    return Ret(None)


def _tournament_wait(frame: Frame, value: Any, env: FrameEnv, b: TournamentBarrier):
    L, label = frame.locals, frame.label
    tid = env.ctx.thread_id
    children = b._children(tid)
    if label == START:
        L["sense"] = b._toggle_sense(tid)
        L["i"] = 0
        return _tournament_arrivals(L, b, children, tid)
    if label == "child_arrived":
        L["i"] += 1
        return _tournament_arrivals(L, b, children, tid)
    if label == "wrote_own":
        return Op(WaitUntil(b.wakeup_addrs[tid], Eq(L["sense"])), "woken")
    if label == "woken":
        L["i"] = 0
        return _tournament_wakeups(L, b, children)
    if label == "wrote_child":
        L["i"] += 1
        return _tournament_wakeups(L, b, children)
    return Ret(None)


def _wireless_barrier_wait(frame: Frame, value: Any, env: FrameEnv, b: WirelessBarrier):
    L, label = frame.locals, frame.label
    if label == START:
        L["sense"] = b._toggle_sense(env.ctx.thread_id)
        L["retries"] = 0
        return Op(BmRmw(b.count_addr, RmwKind.FETCH_AND_INC), "rmw")
    if label == "rmw":
        if value.afb:
            L["retries"] += 1
            if L["retries"] >= b.MAX_RETRIES:
                raise SimulationError("wireless barrier fetch&inc exceeded retry bound")
            return Op(BmRmw(b.count_addr, RmwKind.FETCH_AND_INC), "rmw")
        if value.old_value == b.num_threads - 1:
            return Op(BmStore(b.count_addr, 0), "wrote_count")
        return Op(BmWaitUntil(b.release_addr, Eq(L["sense"])), "done")
    if label == "wrote_count":
        return Op(BmStore(b.release_addr, L["sense"]), "done")
    return Ret(None)


def _tone_barrier_wait(frame: Frame, value: Any, env: FrameEnv, b: ToneBarrier):
    L, label = frame.locals, frame.label
    if label == START:
        L["sense"] = b._toggle_sense(env.ctx.thread_id)
        return Op(ToneStore(b.bm_addr), "stored")
    if label == "stored":
        return Op(ToneWait(b.bm_addr, local_sense=L["sense"]), "done")
    return Ret(None)


_BARRIER_WAIT: Dict[type, Callable] = {
    CentralizedBarrier: _centralized_wait,
    TournamentBarrier: _tournament_wait,
    WirelessBarrier: _wireless_barrier_wait,
    ToneBarrier: _tone_barrier_wait,
}


def _barrier_wait(frame: Frame, value: Any, env: FrameEnv):
    barrier = env.sync(frame.locals["sid"])
    step = _BARRIER_WAIT.get(type(barrier))
    if step is None:
        raise WorkloadError(f"no frame routine for barrier type {type(barrier).__name__}")
    return step(frame, value, env, barrier)


# ------------------------------------------------------------------- locks
def _cas_spin_acquire(frame: Frame, value: Any, env: FrameEnv, lock: CasSpinLock):
    label = frame.label
    if label == "cas":
        old, success = value
        if success:
            return Ret(None)
        return Op(WaitUntil(lock.addr, Eq(0)), "freed")
    # START and "freed" both race with CAS.
    return Op(AtomicOp(lock.addr, RmwKind.COMPARE_AND_SWAP, operand=1, expected=0), "cas")


def _cas_spin_release(frame: Frame, value: Any, env: FrameEnv, lock: CasSpinLock):
    if frame.label == START:
        return Op(Write(lock.addr, 0), "done")
    return Ret(None)


def _mcs_acquire(frame: Frame, value: Any, env: FrameEnv, lock: McsLock):
    L, label = frame.locals, frame.label
    tid = env.ctx.thread_id
    if label == START:
        locked_addr, next_addr = lock._qnode(tid)
        L["locked_addr"] = locked_addr
        L["next_addr"] = next_addr
        return Op(Write(next_addr, 0), "wrote_next")
    if label == "wrote_next":
        return Op(Write(L["locked_addr"], 1), "wrote_locked")
    if label == "wrote_locked":
        return Op(AtomicOp(lock.tail_addr, RmwKind.SWAP, operand=tid + 1), "swapped")
    if label == "swapped":
        predecessor, _ = value
        if predecessor == 0:
            return Ret(None)
        _, pred_next = lock._qnode(predecessor - 1)
        return Op(Write(pred_next, tid + 1), "linked")
    if label == "linked":
        return Op(WaitUntil(L["locked_addr"], Eq(0)), "done")
    return Ret(None)


def _mcs_release(frame: Frame, value: Any, env: FrameEnv, lock: McsLock):
    L, label = frame.locals, frame.label
    tid = env.ctx.thread_id

    def handoff(successor: int):
        succ_locked, _ = lock._qnode(successor - 1)
        return Op(Write(succ_locked, 0), "done")

    if label == START:
        _, next_addr = lock._qnode(tid)
        L["next_addr"] = next_addr
        return Op(
            AtomicOp(lock.tail_addr, RmwKind.COMPARE_AND_SWAP, operand=0, expected=tid + 1),
            "cas",
        )
    if label == "cas":
        _, success = value
        if success:
            return Ret(None)
        return Op(Read(L["next_addr"]), "read_next")
    if label == "read_next":
        if value == 0:
            return Op(WaitUntil(L["next_addr"], Ne(0)), "got_next")
        return handoff(value)
    if label == "got_next":
        return handoff(value)
    return Ret(None)


def _wireless_rmw_retry(L: Dict[str, Any], operation: BmRmw, max_retries: int, what: str):
    """Issue one AFB-bounded RMW attempt, tracking the retry budget."""
    if L["retries"] >= max_retries:
        raise SimulationError(f"{what} exceeded retry bound")
    L["retries"] += 1
    return Op(operation, "rmw")


def _wireless_acquire(frame: Frame, value: Any, env: FrameEnv, lock: WirelessLock):
    L, label = frame.locals, frame.label
    operation = BmRmw(lock.bm_addr, RmwKind.COMPARE_AND_SWAP, operand=1, expected=0)
    what = f"wireless lock at BM address {lock.bm_addr}"
    if label == START:
        L["retries"] = 0
        return _wireless_rmw_retry(L, operation, lock.MAX_RETRIES, what)
    if label == "rmw":
        if value.afb:
            return _wireless_rmw_retry(L, operation, lock.MAX_RETRIES, what)
        if value.success:
            return Ret(None)
        return Op(BmWaitUntil(lock.bm_addr, Eq(0)), "freed")
    if label == "freed":
        return _wireless_rmw_retry(L, operation, lock.MAX_RETRIES, what)
    return Ret(None)


def _wireless_release(frame: Frame, value: Any, env: FrameEnv, lock: WirelessLock):
    if frame.label == START:
        return Op(BmStore(lock.bm_addr, 0), "done")
    return Ret(None)


_LOCK_ACQUIRE: Dict[type, Callable] = {
    CasSpinLock: _cas_spin_acquire,
    McsLock: _mcs_acquire,
    WirelessLock: _wireless_acquire,
}
_LOCK_RELEASE: Dict[type, Callable] = {
    CasSpinLock: _cas_spin_release,
    McsLock: _mcs_release,
    WirelessLock: _wireless_release,
}


def _lock_method(table: Dict[type, Callable], what: str):
    def step(frame: Frame, value: Any, env: FrameEnv):
        lock = env.sync(frame.locals["sid"])
        handler = table.get(type(lock))
        if handler is None:
            raise WorkloadError(f"no frame routine for {what} on {type(lock).__name__}")
        return handler(frame, value, env, lock)

    return step


_lock_acquire = _lock_method(_LOCK_ACQUIRE, "lock.acquire")
_lock_release = _lock_method(_LOCK_RELEASE, "lock.release")


# ------------------------------------------------------------------- cells
def _cell_read(frame: Frame, value: Any, env: FrameEnv):
    cell = env.sync(frame.locals["sid"])
    if frame.label == START:
        if isinstance(cell, BroadcastCell):
            return Op(BmLoad(cell.addr), "done")
        return Op(Read(cell.addr), "done")
    return Ret(value)


def _cell_write(frame: Frame, value: Any, env: FrameEnv):
    cell = env.sync(frame.locals["sid"])
    if frame.label == START:
        stored = frame.locals["value"]
        if isinstance(cell, BroadcastCell):
            return Op(BmStore(cell.addr, stored), "done")
        return Op(Write(cell.addr, stored), "done")
    return Ret(None)


def _cell_cas(frame: Frame, value: Any, env: FrameEnv):
    """CAS on a cell; returns ``(success, old_value)`` like ``AtomicCell.cas``."""
    L, label = frame.locals, frame.label
    cell = env.sync(L["sid"])
    if isinstance(cell, BroadcastCell):
        operation = BmRmw(
            cell.addr, RmwKind.COMPARE_AND_SWAP, operand=L["new"], expected=L["expected"]
        )
        if label == START:
            L["retries"] = 0
            return _wireless_rmw_retry(
                L, operation, cell.MAX_RETRIES, f"BM CAS on address {cell.addr}"
            )
        if value.afb:
            return _wireless_rmw_retry(
                L, operation, cell.MAX_RETRIES, f"BM CAS on address {cell.addr}"
            )
        return Ret((value.success, value.old_value))
    if label == START:
        return Op(
            AtomicOp(
                cell.addr, RmwKind.COMPARE_AND_SWAP, operand=L["new"], expected=L["expected"]
            ),
            "done",
        )
    old, success = value
    return Ret((success, old))


def _cell_fetch_add(frame: Frame, value: Any, env: FrameEnv):
    """Fetch&add on a cell; returns the old value like ``AtomicCell.fetch_add``."""
    L, label = frame.locals, frame.label
    cell = env.sync(L["sid"])
    if isinstance(cell, BroadcastCell):
        operation = BmRmw(cell.addr, RmwKind.FETCH_AND_ADD, operand=L["delta"])
        if label == START:
            L["retries"] = 0
            return _wireless_rmw_retry(
                L, operation, cell.MAX_RETRIES, f"BM fetch&add on address {cell.addr}"
            )
        if value.afb:
            return _wireless_rmw_retry(
                L, operation, cell.MAX_RETRIES, f"BM fetch&add on address {cell.addr}"
            )
        return Ret(value.old_value)
    if label == START:
        return Op(AtomicOp(cell.addr, RmwKind.FETCH_AND_ADD, operand=L["delta"]), "done")
    old, _ = value
    return Ret(old)


#: Static routine table copied into every machine's ``frame_routines``.
SYNC_ROUTINES: Dict[str, Callable] = {
    "sync.barrier.wait": _barrier_wait,
    "sync.lock.acquire": _lock_acquire,
    "sync.lock.release": _lock_release,
    "sync.cell.read": _cell_read,
    "sync.cell.write": _cell_write,
    "sync.cell.cas": _cell_cas,
    "sync.cell.fetch_add": _cell_fetch_add,
}


def barrier_wait(sid: int, label: str) -> Call:
    """Convenience: push a ``barrier.wait`` frame, resume caller at ``label``."""
    return Call("sync.barrier.wait", {"sid": sid}, label)


def lock_acquire(sid: int, label: str) -> Call:
    return Call("sync.lock.acquire", {"sid": sid}, label)


def lock_release(sid: int, label: str) -> Call:
    return Call("sync.lock.release", {"sid": sid}, label)


def cell_fetch_add(sid: int, delta: int, label: str) -> Call:
    return Call("sync.cell.fetch_add", {"sid": sid, "delta": delta}, label)
