"""Factory that builds the right synchronization primitives for a machine.

Workloads never hard-code a lock or barrier algorithm.  They ask the
:class:`SyncFactory` — constructed from a :class:`~repro.machine.manycore.Program`
and the machine's :class:`~repro.config.SyncConfig` — for locks, barriers,
cells, reducers, and channels; the factory returns the Baseline, Baseline+,
or WiSync implementation according to Table 2.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import SyncConfig
from repro.errors import ConfigurationError
from repro.sync.barriers import (
    Barrier,
    CentralizedBarrier,
    ToneBarrier,
    TournamentBarrier,
    WirelessBarrier,
)
from repro.sync.cells import AtomicCell, BroadcastCell, CachedCell
from repro.sync.eureka import OrBarrier
from repro.sync.locks import CasSpinLock, Lock, McsLock, WirelessLock
from repro.sync.producer_consumer import ProducerConsumerChannel
from repro.sync.reduction import Reducer
from repro.sync.rwlock import ReadersWriterLock


class SyncFactory:
    """Builds synchronization objects appropriate for one machine configuration."""

    def __init__(self, program, sync_config: Optional[SyncConfig] = None) -> None:
        self.program = program
        self.config = sync_config if sync_config is not None else program.machine.config.sync
        self._machine_config = program.machine.config

    def _register(self, obj):
        """Give the primitive a stable creation-order ``sync_id``.

        Frames-mode workloads refer to primitives by this id; because the
        factory is driven by a deterministic build, ids are identical across
        rebuilds, which native snapshot restore relies on.
        """
        self.program.machine.register_sync(obj)
        return obj

    # ----------------------------------------------------------------- locks
    def create_lock(self) -> Lock:
        kind = self.config.lock_kind
        if kind == "cas_spin":
            return self._register(CasSpinLock(self.program.alloc_shared()))
        if kind == "mcs":
            return self._register(
                McsLock(
                    tail_addr=self.program.alloc_shared(),
                    alloc_word=lambda: self.program.alloc_shared(),
                )
            )
        if kind == "wireless":
            return self._register(WirelessLock(self.program.alloc_broadcast()))
        raise ConfigurationError(f"unknown lock kind {kind!r}")

    def create_locks(self, count: int) -> List[Lock]:
        """An array of locks (e.g. dedup/fluidanimate-style lock tables)."""
        return [self.create_lock() for _ in range(count)]

    # -------------------------------------------------------------- barriers
    def create_barrier(
        self,
        num_threads: int,
        participants: Optional[List[int]] = None,
    ) -> Barrier:
        """A barrier for ``num_threads`` participants.

        ``participants`` lists the cores involved (needed up front by tone
        barriers, Section 4.4); by default thread ``i`` runs on core
        ``i % num_cores``, matching the machine's default placement.
        """
        kind = self.config.barrier_kind
        if participants is None:
            num_cores = self._machine_config.num_cores
            participants = sorted({i % num_cores for i in range(num_threads)})
        if kind == "centralized":
            return self._register(
                CentralizedBarrier(
                    num_threads,
                    count_addr=self.program.alloc_shared(),
                    release_addr=self.program.alloc_shared(),
                )
            )
        if kind == "tournament":
            arrival = [self.program.alloc_shared() for _ in range(num_threads)]
            wakeup = [self.program.alloc_shared() for _ in range(num_threads)]
            return self._register(TournamentBarrier(num_threads, arrival, wakeup))
        if kind == "wireless":
            return self._register(
                WirelessBarrier(
                    num_threads,
                    count_addr=self.program.alloc_broadcast(),
                    release_addr=self.program.alloc_broadcast(),
                )
            )
        if kind == "tone":
            bm_addr = self.program.alloc_broadcast(
                1, tone_capable=True, participants=participants
            )
            return self._register(ToneBarrier(num_threads, bm_addr))
        raise ConfigurationError(f"unknown barrier kind {kind!r}")

    # ----------------------------------------------------------------- cells
    def create_cell(self) -> AtomicCell:
        """A shared atomic word in the fastest memory this machine offers."""
        if self.config.reduction_kind == "wireless":
            return self._register(BroadcastCell(self.program.alloc_broadcast()))
        return self._register(CachedCell(self.program.alloc_shared()))

    def create_cached_cell(self) -> AtomicCell:
        """A shared atomic word explicitly in cached memory (for baselines)."""
        return self._register(CachedCell(self.program.alloc_shared()))

    def create_reducer(self) -> Reducer:
        return Reducer(self.create_cell())

    def create_rwlock(self) -> ReadersWriterLock:
        """A readers-writer lock in the fastest memory this machine offers."""
        return ReadersWriterLock(self.create_cell())

    def create_or_barrier(self) -> OrBarrier:
        return OrBarrier(self.create_cell())

    def create_channel(self) -> ProducerConsumerChannel:
        """A single-producer/single-consumer slot (Section 4.3.4)."""
        wireless = self.config.reduction_kind == "wireless"
        if wireless:
            data_addr = self.program.alloc_broadcast(4)
            flag_addr = self.program.alloc_broadcast(1)
        else:
            data_addr = self.program.alloc_shared(4)
            flag_addr = self.program.alloc_shared(1)
        return ProducerConsumerChannel(data_addr, flag_addr, wireless)
