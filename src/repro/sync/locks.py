"""Lock implementations for the Table 2 configurations.

* :class:`CasSpinLock` — Baseline: test-and-test-and-set style spin lock
  built only from CAS on cached memory.
* :class:`McsLock` — Baseline+: the queue lock of Mellor-Crummey & Scott
  [31]; each waiter spins on its own cache line, so release traffic is
  point-to-point.
* :class:`WirelessLock` — WiSync: CAS on a Broadcast-Memory location with
  AFB-based retry (Figure 4b); waiters spin on their local BM replica, so
  spinning generates no network traffic at all.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, Generator, Tuple

from repro.cpu.thread import ThreadContext
from repro.errors import SimulationError
from repro.isa.predicates import Eq, Ne
from repro.isa.operations import (
    AtomicOp,
    BmRmw,
    BmStore,
    BmWaitUntil,
    Read,
    RmwKind,
    WaitUntil,
    Write,
)


class Lock(ABC):
    """Mutual exclusion over one logical lock variable."""

    @abstractmethod
    def acquire(self, ctx: ThreadContext) -> Generator:
        """Yield ops until the lock is held by the calling thread."""

    @abstractmethod
    def release(self, ctx: ThreadContext) -> Generator:
        """Yield ops to release the lock."""


class CasSpinLock(Lock):
    """Baseline lock: CAS acquire with coherence-based spinning on failure."""

    def __init__(self, addr: int) -> None:
        self.addr = addr

    def acquire(self, ctx: ThreadContext) -> Generator:
        while True:
            old, success = yield AtomicOp(
                self.addr, RmwKind.COMPARE_AND_SWAP, operand=1, expected=0
            )
            if success:
                return
            # Lock is held: spin locally on the cached copy until it is free,
            # then race again with CAS.
            yield WaitUntil(self.addr, Eq(0))

    def release(self, ctx: ThreadContext) -> Generator:
        yield Write(self.addr, 0)


class McsLock(Lock):
    """Baseline+ lock: MCS queue lock with per-thread queue nodes.

    Queue-node "pointers" are encoded as ``thread_id + 1`` (0 means null).
    Each thread's queue node (a ``locked`` flag and a ``next`` pointer) lives
    on its own cache line, allocated lazily through ``alloc_word``.
    """

    def __init__(self, tail_addr: int, alloc_word: Callable[[], int]) -> None:
        self.tail_addr = tail_addr
        self._alloc_word = alloc_word
        self._qnodes: Dict[int, Tuple[int, int]] = {}

    def _qnode(self, thread_id: int) -> Tuple[int, int]:
        if thread_id not in self._qnodes:
            locked_addr = self._alloc_word()
            next_addr = self._alloc_word()
            self._qnodes[thread_id] = (locked_addr, next_addr)
        return self._qnodes[thread_id]

    def acquire(self, ctx: ThreadContext) -> Generator:
        locked_addr, next_addr = self._qnode(ctx.thread_id)
        my_handle = ctx.thread_id + 1
        yield Write(next_addr, 0)
        yield Write(locked_addr, 1)
        predecessor, _ = yield AtomicOp(self.tail_addr, RmwKind.SWAP, operand=my_handle)
        if predecessor == 0:
            return
        pred_locked, pred_next = self._qnode(predecessor - 1)
        yield Write(pred_next, my_handle)
        yield WaitUntil(locked_addr, Eq(0))

    def release(self, ctx: ThreadContext) -> Generator:
        locked_addr, next_addr = self._qnode(ctx.thread_id)
        my_handle = ctx.thread_id + 1
        old, success = yield AtomicOp(
            self.tail_addr, RmwKind.COMPARE_AND_SWAP, operand=0, expected=my_handle
        )
        if success:
            return
        # A successor exists (or is arriving): wait for it to link itself,
        # then hand the lock over by clearing its locked flag.
        successor = yield Read(next_addr)
        if successor == 0:
            successor = yield WaitUntil(next_addr, Ne(0))
        succ_locked, _ = self._qnode(successor - 1)
        yield Write(succ_locked, 0)


class WirelessLock(Lock):
    """WiSync lock: CAS on a BM entry, retried while the AFB is set."""

    MAX_RETRIES = 10_000

    def __init__(self, bm_addr: int) -> None:
        self.bm_addr = bm_addr

    def acquire(self, ctx: ThreadContext) -> Generator:
        for _ in range(self.MAX_RETRIES):
            result = yield BmRmw(
                self.bm_addr, RmwKind.COMPARE_AND_SWAP, operand=1, expected=0
            )
            if result.afb:
                continue
            if result.success:
                return
            # Lock held: spin on the local BM replica (no wireless traffic).
            yield BmWaitUntil(self.bm_addr, Eq(0))
        raise SimulationError(f"wireless lock at BM address {self.bm_addr} exceeded retry bound")

    def release(self, ctx: ThreadContext) -> Generator:
        yield BmStore(self.bm_addr, 0)
