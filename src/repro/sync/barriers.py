"""Barrier implementations for the Table 2 configurations.

* :class:`CentralizedBarrier` — Baseline: sense-reversing centralized barrier
  whose counter is incremented with a CAS retry loop (Baseline's only atomic)
  and whose release flag is spun on through the coherence protocol.
* :class:`TournamentBarrier` — Baseline+: a sense-reversing combining-tree /
  tournament barrier [31]: arrival climbs a tree, wake-up descends it, every
  thread spins on its own flag, so there is no hot spot.
* :class:`WirelessBarrier` — WiSync Data-channel barrier (Section 4.3.2):
  fetch&increment on a BM counter plus a broadcast release write.
* :class:`ToneBarrier` — WiSync Tone-channel barrier (Section 4.3.3):
  ``tone_st`` on arrival, spin locally with ``tone_ld`` until the hardware
  toggles the location when the channel falls silent.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Generator, List

from repro.cpu.thread import ThreadContext
from repro.errors import SimulationError, WorkloadError
from repro.isa.predicates import Eq
from repro.isa.operations import (
    AtomicOp,
    BmRmw,
    BmStore,
    BmWaitUntil,
    Read,
    RmwKind,
    ToneStore,
    ToneWait,
    WaitUntil,
    Write,
)


class Barrier(ABC):
    """AND-barrier: every participant waits for all the others."""

    def __init__(self, num_threads: int) -> None:
        if num_threads < 1:
            raise WorkloadError("a barrier needs at least one participant")
        self.num_threads = num_threads
        self._sense: Dict[int, int] = {}

    def _toggle_sense(self, thread_id: int) -> int:
        sense = self._sense.get(thread_id, 0) ^ 1
        self._sense[thread_id] = sense
        return sense

    @abstractmethod
    def wait(self, ctx: ThreadContext) -> Generator:
        """Yield ops until every participating thread has arrived."""


class CentralizedBarrier(Barrier):
    """Baseline sense-reversing barrier on cached memory, CAS-only hardware."""

    def __init__(self, num_threads: int, count_addr: int, release_addr: int) -> None:
        super().__init__(num_threads)
        self.count_addr = count_addr
        self.release_addr = release_addr

    def wait(self, ctx: ThreadContext) -> Generator:
        sense = self._toggle_sense(ctx.thread_id)
        # fetch&increment emulated with a CAS retry loop.
        while True:
            count = yield Read(self.count_addr)
            old, success = yield AtomicOp(
                self.count_addr, RmwKind.COMPARE_AND_SWAP, operand=count + 1, expected=count
            )
            if success:
                break
        if old == self.num_threads - 1:
            yield Write(self.count_addr, 0)
            yield Write(self.release_addr, sense)
        else:
            yield WaitUntil(self.release_addr, Eq(sense))


class TournamentBarrier(Barrier):
    """Baseline+ combining-tree (tournament) barrier with tree wake-up.

    Thread ``i``'s children in the static binary tree are ``2i+1`` and
    ``2i+2``.  Arrival propagates up the tree, release propagates down it;
    every flag lives on its own cache line.
    """

    def __init__(self, num_threads: int, arrival_addrs: List[int], wakeup_addrs: List[int]) -> None:
        super().__init__(num_threads)
        if len(arrival_addrs) < num_threads or len(wakeup_addrs) < num_threads:
            raise WorkloadError("tournament barrier needs one arrival and wakeup flag per thread")
        self.arrival_addrs = arrival_addrs
        self.wakeup_addrs = wakeup_addrs

    def _children(self, thread_id: int) -> List[int]:
        children = []
        for child in (2 * thread_id + 1, 2 * thread_id + 2):
            if child < self.num_threads:
                children.append(child)
        return children

    def wait(self, ctx: ThreadContext) -> Generator:
        sense = self._toggle_sense(ctx.thread_id)
        tid = ctx.thread_id
        for child in self._children(tid):
            yield WaitUntil(self.arrival_addrs[child], Eq(sense))
        if tid != 0:
            yield Write(self.arrival_addrs[tid], sense)
            yield WaitUntil(self.wakeup_addrs[tid], Eq(sense))
        for child in self._children(tid):
            yield Write(self.wakeup_addrs[child], sense)


class WirelessBarrier(Barrier):
    """WiSync Data-channel barrier: BM fetch&inc plus a broadcast release.

    The paper notes the count and the release flag could share one 64-bit
    entry (32 bits each); two entries are used here for clarity — the timing
    is identical because only the last arrival writes the release word.
    """

    MAX_RETRIES = 10_000

    def __init__(self, num_threads: int, count_addr: int, release_addr: int) -> None:
        super().__init__(num_threads)
        self.count_addr = count_addr
        self.release_addr = release_addr

    def wait(self, ctx: ThreadContext) -> Generator:
        sense = self._toggle_sense(ctx.thread_id)
        old = None
        for _ in range(self.MAX_RETRIES):
            result = yield BmRmw(self.count_addr, RmwKind.FETCH_AND_INC)
            if not result.afb:
                old = result.old_value
                break
        if old is None:
            raise SimulationError("wireless barrier fetch&inc exceeded retry bound")
        if old == self.num_threads - 1:
            yield BmStore(self.count_addr, 0)
            yield BmStore(self.release_addr, sense)
        else:
            yield BmWaitUntil(self.release_addr, Eq(sense))


class ToneBarrier(Barrier):
    """WiSync Tone-channel barrier (Figure 4c).

    Arrival is a ``tone_st``; completion is observed by spinning with
    ``tone_ld`` on the local BM location, which the hardware toggles when the
    Tone channel falls silent.
    """

    def __init__(self, num_threads: int, bm_addr: int) -> None:
        super().__init__(num_threads)
        self.bm_addr = bm_addr

    def wait(self, ctx: ThreadContext) -> Generator:
        sense = self._toggle_sense(ctx.thread_id)
        yield ToneStore(self.bm_addr)
        yield ToneWait(self.bm_addr, local_sense=sense)
