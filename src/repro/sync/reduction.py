"""Reductions (Section 4.3.5).

WiSync supports reductions with ``fetch&add`` directly on a BM entry; the
conventional configurations perform the same update with their atomic
hardware on cached memory.  Both are expressed through an
:class:`~repro.sync.cells.AtomicCell`.
"""

from __future__ import annotations

from typing import Generator

from repro.cpu.thread import ThreadContext
from repro.sync.cells import AtomicCell


class Reducer:
    """A single shared accumulator updated with fetch&add."""

    def __init__(self, cell: AtomicCell) -> None:
        self.cell = cell

    def add(self, ctx: ThreadContext, delta: int) -> Generator:
        """Atomically add ``delta``; returns the value before the addition."""
        old = yield from self.cell.fetch_add(ctx, delta)
        return old

    def read(self, ctx: ThreadContext) -> Generator:
        value = yield from self.cell.read(ctx)
        return value

    def reset(self, ctx: ThreadContext) -> Generator:
        yield from self.cell.write(ctx, 0)
