"""Readers-writer lock over one :class:`~repro.sync.cells.AtomicCell`.

Not a paper primitive — part of the contention-scenario suite.  The lock
word encodes the whole state in one shared 64-bit location so the same
algorithm runs against cached memory (Baseline/Baseline+) and the Broadcast
Memory (WiSync): a value below :data:`WRITER_HELD` is the count of active
readers, and exactly :data:`WRITER_HELD` means a writer holds the lock.

Readers enter with a CAS incrementing the count (retrying while a writer is
in), writers CAS ``0 -> WRITER_HELD`` (waiting for drain on failure); both
sides spin with ``wait_until``, which is local-replica polling on WiSync and
coherence-based spinning on the baselines.  Readers are preferred: a stream
of overlapping readers can starve a writer, which is exactly the contended
regime the ``rwlock`` scenario measures.
"""

from __future__ import annotations

from typing import Generator

from repro.cpu.thread import ThreadContext
from repro.isa.predicates import Eq, Lt
from repro.sync.cells import AtomicCell

#: Lock-word value while a writer is inside (far above any reader count).
WRITER_HELD = 1 << 32


class ReadersWriterLock:
    """Shared/exclusive lock encoded in a single atomic word."""

    def __init__(self, cell: AtomicCell) -> None:
        self.cell = cell

    # ---------------------------------------------------------------- readers
    def acquire_read(self, ctx: ThreadContext) -> Generator:
        while True:
            value = yield from self.cell.read(ctx)
            if value >= WRITER_HELD:
                # Writer inside: spin until it leaves, then race again.
                yield from self.cell.wait_until(ctx, Lt(WRITER_HELD))
                continue
            success, _ = yield from self.cell.cas(ctx, expected=value, new=value + 1)
            if success:
                return

    def release_read(self, ctx: ThreadContext) -> Generator:
        yield from self.cell.fetch_add(ctx, -1)

    # ---------------------------------------------------------------- writers
    def acquire_write(self, ctx: ThreadContext) -> Generator:
        while True:
            success, _ = yield from self.cell.cas(ctx, expected=0, new=WRITER_HELD)
            if success:
                return
            # Readers draining or another writer inside: wait for idle.
            yield from self.cell.wait_until(ctx, Eq(0))

    def release_write(self, ctx: ThreadContext) -> Generator:
        yield from self.cell.write(ctx, 0)
