"""Atomic cells: a uniform view of one shared 64-bit counter/flag/word.

Workloads that only need "a shared word with atomic operations" (the CAS
kernels, reductions, eureka flags) use an :class:`AtomicCell` so the same
kernel code runs against cached memory (Baseline/Baseline+) and against the
Broadcast Memory (WiSync).  All methods are generators to be driven with
``yield from`` inside a thread body.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Generator, Tuple

from repro.cpu.thread import ThreadContext
from repro.errors import SimulationError
from repro.isa.operations import (
    AtomicOp,
    BmLoad,
    BmRmw,
    BmStore,
    BmWaitUntil,
    Read,
    RmwKind,
    WaitUntil,
    Write,
)


class AtomicCell(ABC):
    """One shared 64-bit location with atomic read-modify-write support."""

    def __init__(self, addr: int) -> None:
        self.addr = addr

    @abstractmethod
    def read(self, ctx: ThreadContext) -> Generator:
        """Yield ops to load the value; returns it."""

    @abstractmethod
    def write(self, ctx: ThreadContext, value: int) -> Generator:
        """Yield ops to store ``value``."""

    @abstractmethod
    def cas(self, ctx: ThreadContext, expected: int, new: int) -> Generator:
        """Atomic compare-and-swap; returns ``(success, old_value)``."""

    @abstractmethod
    def fetch_add(self, ctx: ThreadContext, delta: int = 1) -> Generator:
        """Atomic fetch-and-add; returns the old value."""

    @abstractmethod
    def wait_until(self, ctx: ThreadContext, predicate: Callable[[int], bool]) -> Generator:
        """Spin until ``predicate(value)``; returns the satisfying value."""


class CachedCell(AtomicCell):
    """A cell held in regular cached memory, kept coherent by the directory."""

    def read(self, ctx: ThreadContext) -> Generator:
        value = yield Read(self.addr)
        return value

    def write(self, ctx: ThreadContext, value: int) -> Generator:
        yield Write(self.addr, value)

    def cas(self, ctx: ThreadContext, expected: int, new: int) -> Generator:
        old, success = yield AtomicOp(
            self.addr, RmwKind.COMPARE_AND_SWAP, operand=new, expected=expected
        )
        return success, old

    def fetch_add(self, ctx: ThreadContext, delta: int = 1) -> Generator:
        old, _ = yield AtomicOp(self.addr, RmwKind.FETCH_AND_ADD, operand=delta)
        return old

    def wait_until(self, ctx: ThreadContext, predicate: Callable[[int], bool]) -> Generator:
        value = yield WaitUntil(self.addr, predicate)
        return value


class BroadcastCell(AtomicCell):
    """A cell held in the Broadcast Memory and updated over the Data channel.

    Atomic operations follow the paper's AFB protocol (Figure 4a-b): if the
    Atomicity Failure Bit is set, the RMW instruction did not perform its
    write and is re-executed.
    """

    #: Safety bound on AFB retries; contention never realistically needs this.
    MAX_RETRIES = 10_000

    def read(self, ctx: ThreadContext) -> Generator:
        value = yield BmLoad(self.addr)
        return value

    def write(self, ctx: ThreadContext, value: int) -> Generator:
        yield BmStore(self.addr, value)

    def cas(self, ctx: ThreadContext, expected: int, new: int) -> Generator:
        for _ in range(self.MAX_RETRIES):
            result = yield BmRmw(
                self.addr, RmwKind.COMPARE_AND_SWAP, operand=new, expected=expected
            )
            if result.afb:
                continue
            return result.success, result.old_value
        raise SimulationError(f"BM CAS on address {self.addr} exceeded retry bound")

    def fetch_add(self, ctx: ThreadContext, delta: int = 1) -> Generator:
        for _ in range(self.MAX_RETRIES):
            result = yield BmRmw(self.addr, RmwKind.FETCH_AND_ADD, operand=delta)
            if result.afb:
                continue
            return result.old_value
        raise SimulationError(f"BM fetch&add on address {self.addr} exceeded retry bound")

    def wait_until(self, ctx: ThreadContext, predicate: Callable[[int], bool]) -> Generator:
        value = yield BmWaitUntil(self.addr, predicate)
        return value
