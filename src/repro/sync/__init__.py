"""Software synchronization algorithms for every architecture configuration.

Each primitive is expressed as generator methods that yield abstract
operations, so the same workload code runs on all four Table 2
configurations: the :class:`~repro.sync.api.SyncFactory` picks CAS spin
locks / centralized barriers (Baseline), MCS locks / tournament barriers
(Baseline+), or the wireless and tone-channel algorithms of Section 4.3
(WiSyncNoT / WiSync).
"""

from repro.sync.api import SyncFactory
from repro.sync.barriers import (
    Barrier,
    CentralizedBarrier,
    ToneBarrier,
    TournamentBarrier,
    WirelessBarrier,
)
from repro.sync.cells import AtomicCell, BroadcastCell, CachedCell
from repro.sync.eureka import OrBarrier
from repro.sync.locks import CasSpinLock, Lock, McsLock, WirelessLock
from repro.sync.producer_consumer import ProducerConsumerChannel
from repro.sync.reduction import Reducer
from repro.sync.rwlock import ReadersWriterLock

__all__ = [
    "SyncFactory",
    "Barrier",
    "CentralizedBarrier",
    "TournamentBarrier",
    "WirelessBarrier",
    "ToneBarrier",
    "Lock",
    "CasSpinLock",
    "McsLock",
    "WirelessLock",
    "AtomicCell",
    "CachedCell",
    "BroadcastCell",
    "OrBarrier",
    "Reducer",
    "ProducerConsumerChannel",
    "ReadersWriterLock",
]
