"""OR-barriers ("eurekas", Section 4.3.2).

An OR-barrier fires as soon as *one* participant detects a condition
(search success, overflow, exception).  It is a sense-reversing boolean
flag: posters toggle it, and the other threads either poll it cheaply or
block on it.
"""

from __future__ import annotations

from typing import Dict, Generator

from repro.cpu.thread import ThreadContext
from repro.isa.predicates import Eq
from repro.sync.cells import AtomicCell


class OrBarrier:
    """Sense-reversing eureka flag over an :class:`AtomicCell`."""

    def __init__(self, cell: AtomicCell) -> None:
        self.cell = cell
        self._sense: Dict[int, int] = {}

    def _current_sense(self, thread_id: int) -> int:
        return self._sense.get(thread_id, 0)

    def _advance_sense(self, thread_id: int) -> int:
        sense = self._sense.get(thread_id, 0) ^ 1
        self._sense[thread_id] = sense
        return sense

    def post(self, ctx: ThreadContext) -> Generator:
        """Signal the condition: toggles the flag for this episode."""
        sense = self._advance_sense(ctx.thread_id)
        yield from self.cell.write(ctx, sense)

    def poll(self, ctx: ThreadContext) -> Generator:
        """Cheap check: returns True if someone posted this episode."""
        sense = self._current_sense(ctx.thread_id) ^ 1
        value = yield from self.cell.read(ctx)
        if value == sense:
            self._sense[ctx.thread_id] = sense
            return True
        return False

    def wait(self, ctx: ThreadContext) -> Generator:
        """Block until someone posts this episode."""
        sense = self._advance_sense(ctx.thread_id)
        yield from self.cell.wait_until(ctx, Eq(sense))
