"""Exception hierarchy for the WiSync reproduction library.

All errors raised by :mod:`repro` derive from :class:`ReproError` so that
callers can catch library-specific failures without masking programming
errors such as :class:`TypeError`.
"""

from __future__ import annotations

from typing import Any, Sequence, Tuple


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration object is inconsistent or out of supported range."""


class SimulationError(ReproError):
    """The simulation engine was used incorrectly or reached a bad state."""


class DeadlockError(SimulationError):
    """The simulator ran out of events while threads were still blocked."""


class MemoryError_(ReproError):
    """A modelled memory subsystem was used incorrectly.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`MemoryError`.
    """


class ProtectionError(MemoryError_):
    """A broadcast-memory access violated PID-based protection."""


class AllocationError(MemoryError_):
    """A broadcast-memory or page allocation could not be satisfied."""


class TranslationError(MemoryError_):
    """A virtual address had no valid translation for the accessing process."""


class WirelessError(ReproError):
    """The wireless substrate was used incorrectly."""


class ToneBarrierError(ReproError):
    """A tone barrier was allocated or used incorrectly (see paper Sec. 5.2)."""


class WorkloadError(ReproError):
    """A workload definition is invalid or issued an unsupported operation."""


class ExecutionError(ReproError):
    """One or more sweep grid points failed to execute, even after retries.

    Executors raise this only *after* yielding every successful result, so a
    streaming consumer (``Runner.run_iter``, the cache) keeps the completed
    grid points; re-running the sweep then only re-dispatches the failures.
    ``failures`` holds one ``(spec, reason)`` pair per grid point that never
    produced a result.
    """

    def __init__(self, message: str, failures: Sequence[Tuple[Any, str]] = ()) -> None:
        super().__init__(message)
        self.failures: Tuple[Tuple[Any, str], ...] = tuple(failures)


class PartialSweepError(ExecutionError):
    """A sweep hit a wall-clock deadline and degraded gracefully.

    Raised — like every :class:`ExecutionError` — only *after* the executor
    has yielded every result it did obtain, so the completed grid points
    survive (and are cached).  ``timed_out`` names the ``(spec, reason)``
    pairs that were cut off by the per-spec deadline or the sweep-level
    budget; ``failures`` (inherited) additionally includes grid points that
    failed for non-deadline reasons in the same sweep.
    """

    def __init__(
        self,
        message: str,
        failures: Sequence[Tuple[Any, str]] = (),
        timed_out: Sequence[Tuple[Any, str]] = (),
    ) -> None:
        super().__init__(message, failures=failures)
        self.timed_out: Tuple[Tuple[Any, str], ...] = tuple(timed_out)


class JournalError(ReproError):
    """A broker journal could not be read back.

    Raised for structurally corrupt journals — an invalid record in the
    *middle* of the file, an unrecognized header — that cannot be trusted for
    replay.  A torn **tail** record (the broker was killed mid-append) is
    expected under SIGKILL and is *not* an error: replay warns and drops only
    that record.
    """


class ServiceError(ReproError):
    """The sweep service (``repro serve``) or its HTTP client failed.

    Raised by :class:`~repro.runner.service_client.ServiceClient` for
    transport failures and non-2xx API replies (the server's ``error``
    detail is included verbatim), and by the service layer for requests
    that cannot be honored — unknown job ids, submissions to a terminal
    job, malformed SweepSpec payloads — which the HTTP plane maps to
    4xx status codes.
    """


class SnapshotError(ReproError):
    """A checkpoint could not be captured, validated, or restored.

    Raised for unreadable or corrupt snapshot files (bad integrity hash,
    unknown format version), for snapshots whose spec no longer matches the
    code being restored into, and for replay fast-forwards that diverge from
    the captured native state — each of which means the checkpoint cannot be
    trusted and the caller should fall back to from-scratch execution.
    """


class LintError(ReproError):
    """The static-analysis engine was misconfigured or fed invalid input.

    Raised for unknown rule ids in ``--select``/``--ignore``, unreadable or
    syntactically invalid source files, and malformed baseline files.  Lint
    *findings* are not errors — they are reported and drive the exit code.
    """


class AnalysisError(ReproError):
    """A metric computation or MetricFrame operation received invalid input.

    Raised instead of silently returning 0.0: a zero-cycle run fed to a
    speedup or throughput computation is always a harness bug upstream, and
    masking it skews geometric means and paper tables without a trace.
    """
