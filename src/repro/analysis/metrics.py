"""Metric computations used by the experiment harness."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping

from repro.machine.results import SimResult
from repro.sim.stats import arithmetic_mean, geometric_mean


def speedup(baseline_cycles: float, other_cycles: float) -> float:
    """Execution-time speedup of ``other`` relative to ``baseline``."""
    if other_cycles <= 0:
        return 0.0
    return baseline_cycles / other_cycles


def speedups_over_baseline(results: Mapping[str, SimResult], baseline_name: str = "baseline") -> Dict[str, float]:
    """Per-configuration speedups over the named baseline result."""
    base = results[baseline_name]
    return {
        name: speedup(base.total_cycles, result.total_cycles)
        for name, result in results.items()
    }


def throughput_per_kcycle(total_operations: int, total_cycles: int) -> float:
    """Operations per 1000 cycles (the y-axis of Figure 9)."""
    if total_cycles <= 0:
        return 0.0
    return 1000.0 * total_operations / total_cycles


def geometric_mean_speedup(values: Iterable[float]) -> float:
    return geometric_mean(list(values))


def arithmetic_mean_speedup(values: Iterable[float]) -> float:
    return arithmetic_mean(list(values))


def utilization_percent(result: SimResult) -> float:
    """Data-channel utilization as a percentage of total cycles (Table 5)."""
    return 100.0 * result.data_channel_utilization()
