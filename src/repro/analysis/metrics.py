"""Metric computations used by the experiment harness.

Every ratio metric validates its denominator: a non-positive cycle count is
always an upstream harness bug (a truncated run, a miswired sweep), and the
old behaviour of silently returning ``0.0`` skewed geometric means without a
trace.  Callers that genuinely want a fallback value pass ``default=`` —
the escape hatch keeps the old semantics opt-in and visible at the call
site.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.errors import AnalysisError
from repro.machine.results import SimResult

#: Sentinel distinguishing "no default supplied" from ``default=None``.
RAISE = object()


def _guard(value: float, what: str, default: object) -> float:
    if default is RAISE:
        raise AnalysisError(
            f"{what} must be positive, got {value!r}; "
            "pass default= to map invalid input to a fallback value"
        )
    return default  # type: ignore[return-value]


def speedup(baseline_cycles: float, other_cycles: float, default: object = RAISE) -> float:
    """Execution-time speedup of ``other`` relative to ``baseline``.

    Raises :class:`~repro.errors.AnalysisError` when ``other_cycles`` is not
    positive unless a ``default`` fallback is supplied.
    """
    if other_cycles <= 0:
        return _guard(other_cycles, "speedup denominator (other_cycles)", default)
    return baseline_cycles / other_cycles


def speedups_over_baseline(results: Mapping[str, SimResult], baseline_name: str = "baseline") -> Dict[str, float]:
    """Per-configuration speedups over the named baseline result."""
    base = results[baseline_name]
    return {
        name: speedup(base.total_cycles, result.total_cycles)
        for name, result in results.items()
    }


def throughput_per_kcycle(
    total_operations: int, total_cycles: int, default: object = RAISE
) -> float:
    """Operations per 1000 cycles (the y-axis of Figure 9).

    Raises :class:`~repro.errors.AnalysisError` when ``total_cycles`` is not
    positive unless a ``default`` fallback is supplied.
    """
    if total_cycles <= 0:
        return _guard(total_cycles, "throughput denominator (total_cycles)", default)
    return 1000.0 * total_operations / total_cycles


def cycles_per_operation(
    total_cycles: int, total_operations: float, default: object = RAISE
) -> float:
    """Cycles per completed operation — the contention-suite normalization.

    Total cycles are incomparable across contention levels (a ``high`` preset
    simply does more work); cycles per completed operation is the
    per-operation cost the MAC-comparison literature reports.
    """
    if total_operations is None or total_operations <= 0:
        return _guard(total_operations, "cycles/op denominator (operations)", default)
    return total_cycles / total_operations


def utilization_percent(result: SimResult) -> float:
    """Data-channel utilization as a percentage of total cycles (Table 5)."""
    return 100.0 * result.data_channel_utilization()
