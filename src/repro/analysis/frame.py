"""MetricFrame: a typed, queryable, columnar view of sweep results.

Every consumer of a sweep — the figure/table experiment modules, the CLI's
``report`` and ``compare`` commands, the profile gate, the benchmarks — needs
the same shape: one row per grid point carrying the spec's axes (workload,
params, config, backoff, cores, seed) and the run's metrics (cycles, engine
events, wireless counters, completed/cached flags, workload-reported extras).
:class:`MetricFrame` is that shape, with a declared :class:`Schema` (every
column is typed and marked as a *dimension* or a *metric*), chainable
``where`` / ``select`` / ``group_by`` / ``pivot`` / ``derive`` operations,
built-in derived metrics (``speedup_over``, cycles/op, ops-per-kcycle,
events/sec), and lossless JSON and CSV round-trips.

The canonical constructor is
:meth:`~repro.runner.runner.SweepResult.frame`::

    frame = runner.run(fig7_sweep(core_counts=[16, 32])).frame()
    frame.where(config="WiSync").pivot(("cores",), "workload", "cycles")

Dimensions versus metrics matter for the relational operations: a row's
*identity* is the tuple of its dimension values, which is what
:meth:`MetricFrame.speedup_over` joins on and what
:func:`~repro.analysis.compare.compare_frames` aligns two frames by.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.analysis.metrics import (
    RAISE,
    cycles_per_operation,
    speedup,
    throughput_per_kcycle,
)
from repro.errors import AnalysisError
from repro.sim.stats import arithmetic_mean, geometric_mean

#: Serialization format tag (bump on incompatible layout changes).
FRAME_FORMAT = "metricframe/v1"

#: CSV encoding of a missing (None) cell; literal backslashes in string
#: cells are doubled so the token can never collide with real data.
_CSV_NONE = "\\N"

COLUMN_TYPES = ("int", "float", "str", "bool", "json")
COLUMN_KINDS = ("dim", "metric")

#: A row, as handed to ``derive``/``where`` callables: column name -> value.
Row = Dict[str, Any]


# ---------------------------------------------------------------------------
# Schema
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Column:
    """One typed column: a sweep axis (``dim``) or a measurement (``metric``)."""

    name: str
    type: str = "float"
    kind: str = "metric"

    def __post_init__(self) -> None:
        if self.type not in COLUMN_TYPES:
            raise AnalysisError(f"unknown column type {self.type!r}; choices: {COLUMN_TYPES}")
        if self.kind not in COLUMN_KINDS:
            raise AnalysisError(f"unknown column kind {self.kind!r}; choices: {COLUMN_KINDS}")

    def to_dict(self) -> Dict[str, str]:
        return {"name": self.name, "type": self.type, "kind": self.kind}

    @classmethod
    def from_dict(cls, payload: Mapping[str, str]) -> "Column":
        return cls(name=payload["name"], type=payload["type"], kind=payload["kind"])


def _coerce(value: Any, column: Column) -> Any:
    """Validate ``value`` against ``column``; ints are widened for float columns."""
    if value is None:
        return None
    kind = column.type
    if kind == "int":
        if isinstance(value, bool) or not isinstance(value, int):
            raise AnalysisError(f"column {column.name!r} is int, got {value!r}")
        return value
    if kind == "float":
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise AnalysisError(f"column {column.name!r} is float, got {value!r}")
        return float(value)
    if kind == "str":
        if not isinstance(value, str):
            raise AnalysisError(f"column {column.name!r} is str, got {value!r}")
        return value
    if kind == "bool":
        if not isinstance(value, bool):
            raise AnalysisError(f"column {column.name!r} is bool, got {value!r}")
        return value
    return value  # "json": any JSON-serializable payload, stored as-is


# ---------------------------------------------------------------------------
# Pivot
# ---------------------------------------------------------------------------
@dataclass
class Pivot:
    """A pivoted frame: index tuples down, series labels across.

    ``to_dict`` yields the nested mapping the legacy experiment API returns
    (``{index: {label: value}}``, scalar index keys when the index is a
    single column) and :func:`repro.analysis.tables.render_mapping` renders.
    """

    index_names: Tuple[str, ...]
    index_keys: Tuple[Tuple[Any, ...], ...]   # first-seen order
    labels: Tuple[Any, ...]                   # first-seen order
    cells: Dict[Tuple[Tuple[Any, ...], Any], Any]

    def value(self, key: Tuple[Any, ...], label: Any, default: Any = None) -> Any:
        return self.cells.get((key, label), default)

    def to_dict(self) -> Dict[Any, Dict[Any, Any]]:
        scalar = len(self.index_names) == 1
        table: Dict[Any, Dict[Any, Any]] = {}
        for key in self.index_keys:
            row: Dict[Any, Any] = {}
            for label in self.labels:
                if (key, label) in self.cells:
                    row[label] = self.cells[(key, label)]
            table[key[0] if scalar else key] = row
        return table


# ---------------------------------------------------------------------------
# Aggregations
# ---------------------------------------------------------------------------
def _agg_geomean(values: List[float]) -> float:
    try:
        return geometric_mean(values)
    except ValueError as error:
        raise AnalysisError(f"geomean aggregation failed: {error}")


AGGREGATIONS: Dict[str, Callable[[List[Any]], Any]] = {
    "mean": arithmetic_mean,
    "geomean": _agg_geomean,
    "sum": sum,
    "min": min,
    "max": max,
    "count": len,
    "first": lambda values: values[0],
}


def aggregate(agg: str, values: Iterable[Any]) -> Any:
    """Apply a named aggregation to the non-None ``values``."""
    if agg not in AGGREGATIONS:
        raise AnalysisError(f"unknown aggregation {agg!r}; choices: {sorted(AGGREGATIONS)}")
    kept = [value for value in values if value is not None]
    if not kept and agg not in ("count", "sum"):
        raise AnalysisError(f"aggregation {agg!r} over an empty column")
    return AGGREGATIONS[agg](kept)


# ---------------------------------------------------------------------------
# MetricFrame
# ---------------------------------------------------------------------------
class MetricFrame:
    """An immutable columnar table of sweep metrics; every op returns a new frame."""

    def __init__(
        self,
        schema: Sequence[Column],
        columns: Optional[Mapping[str, Sequence[Any]]] = None,
    ) -> None:
        self.schema: Tuple[Column, ...] = tuple(schema)
        names = [column.name for column in self.schema]
        if len(set(names)) != len(names):
            raise AnalysisError(f"duplicate column names in schema: {names}")
        self._by_name: Dict[str, Column] = {column.name: column for column in self.schema}
        data: Dict[str, List[Any]] = {name: [] for name in names}
        if columns:
            lengths = {len(values) for values in columns.values()}
            if len(lengths) > 1:
                raise AnalysisError(f"ragged columns: lengths {sorted(lengths)}")
            for name in names:
                if name not in columns:
                    raise AnalysisError(f"schema column {name!r} missing from data")
            for name in columns:
                if name not in self._by_name:
                    raise AnalysisError(f"data column {name!r} missing from schema")
            for name in names:
                column = self._by_name[name]
                data[name] = [_coerce(value, column) for value in columns[name]]
        self._columns = data
        self._length = len(next(iter(data.values()))) if data else 0

    # ---------------------------------------------------------- construction
    @classmethod
    def from_rows(cls, schema: Sequence[Column], rows: Iterable[Mapping[str, Any]]) -> "MetricFrame":
        """Build a frame from row dicts; keys absent from a row become None."""
        schema = tuple(schema)
        names = [column.name for column in schema]
        known = set(names)
        columns: Dict[str, List[Any]] = {name: [] for name in names}
        for index, row in enumerate(rows):
            unknown = set(row) - known
            if unknown:
                raise AnalysisError(f"row {index} has columns not in the schema: {sorted(unknown)}")
            for name in names:
                columns[name].append(row.get(name))
        return cls(schema, columns)

    # -------------------------------------------------------------- basics
    def __len__(self) -> int:
        return self._length

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(column.name for column in self.schema)

    def column_def(self, name: str) -> Column:
        if name not in self._by_name:
            raise AnalysisError(f"no column {name!r}; columns: {list(self.column_names)}")
        return self._by_name[name]

    def column(self, name: str) -> Tuple[Any, ...]:
        self.column_def(name)
        return tuple(self._columns[name])

    def dimensions(self) -> Tuple[str, ...]:
        return tuple(column.name for column in self.schema if column.kind == "dim")

    def metrics(self) -> Tuple[str, ...]:
        return tuple(column.name for column in self.schema if column.kind == "metric")

    def row(self, index: int) -> Row:
        return {name: self._columns[name][index] for name in self.column_names}

    def rows(self) -> Iterator[Row]:
        for index in range(self._length):
            yield self.row(index)

    def unique(self, name: str) -> Tuple[Any, ...]:
        """Distinct values of one column, in first-seen order."""
        seen: List[Any] = []
        for value in self.column(name):
            if value not in seen:
                seen.append(value)
        return tuple(seen)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricFrame):
            return NotImplemented
        return self.schema == other.schema and self._columns == other._columns

    def __repr__(self) -> str:
        dims = len(self.dimensions())
        return (
            f"MetricFrame({self._length} rows, {len(self.schema)} columns: "
            f"{dims} dims, {len(self.schema) - dims} metrics)"
        )

    # ------------------------------------------------------------ relational
    def _subset(self, indices: Sequence[int]) -> "MetricFrame":
        columns = {
            name: [self._columns[name][i] for i in indices] for name in self.column_names
        }
        return MetricFrame(self.schema, columns)

    def where(self, predicate: Optional[Callable[[Row], bool]] = None, **equals: Any) -> "MetricFrame":
        """Rows matching a predicate and/or per-column constraints.

        Keyword constraints test equality, or membership when the constraint
        is a list/tuple/set/frozenset: ``frame.where(config=("WiSync",
        "Baseline"), cores=16)``.
        """
        for name in equals:
            self.column_def(name)
        indices: List[int] = []
        for index in range(self._length):
            row = self.row(index)
            keep = True
            for name, constraint in equals.items():
                if isinstance(constraint, (list, tuple, set, frozenset)):
                    keep = row[name] in constraint
                else:
                    keep = row[name] == constraint
                if not keep:
                    break
            if keep and predicate is not None:
                keep = bool(predicate(row))
            if keep:
                indices.append(index)
        return self._subset(indices)

    def select(self, *names: str) -> "MetricFrame":
        """Keep only the named columns, in the given order."""
        schema = tuple(self.column_def(name) for name in names)
        return MetricFrame(schema, {name: self._columns[name] for name in names})

    def sort_by(self, *names: str, reverse: bool = False) -> "MetricFrame":
        """Stable sort by the named columns (None sorts first)."""
        for name in names:
            self.column_def(name)

        def key(index: int) -> Tuple[Any, ...]:
            parts: List[Any] = []
            for name in names:
                value = self._columns[name][index]
                parts.append((value is not None, value))
            return tuple(parts)

        return self._subset(sorted(range(self._length), key=key, reverse=reverse))

    def derive(
        self,
        name: str,
        fn: Callable[[Row], Any],
        type: str = "float",
        kind: str = "metric",
    ) -> "MetricFrame":
        """Append a computed column; ``fn`` receives each row as a dict."""
        if name in self._by_name:
            raise AnalysisError(f"column {name!r} already exists")
        column = Column(name, type=type, kind=kind)
        values = [_coerce(fn(self.row(index)), column) for index in range(self._length)]
        columns = dict(self._columns)
        columns[name] = values
        return MetricFrame(self.schema + (column,), columns)

    def explode(
        self,
        name: str,
        values: Sequence[Any],
        where: Callable[[Row], bool],
    ) -> "MetricFrame":
        """Replicate matching rows once per value of ``values``, rebinding ``name``.

        The contention-scenario grid needs this: a MAC-free Baseline point is
        simulated once but participates in every backoff row of the
        comparison table.
        """
        self.column_def(name)
        if not values:
            raise AnalysisError("explode needs at least one replacement value")
        rows: List[Row] = []
        for row in self.rows():
            if where(row):
                for value in values:
                    clone = dict(row)
                    clone[name] = value
                    rows.append(clone)
            else:
                rows.append(row)
        return MetricFrame.from_rows(self.schema, rows)

    def concat(self, other: "MetricFrame") -> "MetricFrame":
        """Append another frame with an identical schema (trend tracking)."""
        if other.schema != self.schema:
            raise AnalysisError("cannot concat frames with different schemas")
        columns = {
            name: list(self._columns[name]) + list(other._columns[name])
            for name in self.column_names
        }
        return MetricFrame(self.schema, columns)

    def group_by(
        self,
        keys: Sequence[str],
        aggregations: Mapping[str, Tuple[str, str]],
    ) -> "MetricFrame":
        """Aggregate rows sharing the ``keys`` dimension tuple.

        ``aggregations`` maps each output column to ``(source_column, agg)``
        with agg one of mean / geomean / sum / min / max / count / first.
        Groups keep first-seen order; values aggregate in row order (so a
        geomean is bit-reproducible run to run).
        """
        keys = tuple(keys)
        for key in keys:
            self.column_def(key)
        grouped: Dict[Tuple[Any, ...], Dict[str, List[Any]]] = {}
        order: List[Tuple[Any, ...]] = []
        sources = {source for source, _ in aggregations.values()}
        for source in sources:
            self.column_def(source)
        for row in self.rows():
            group = tuple(row[key] for key in keys)
            if group not in grouped:
                grouped[group] = {source: [] for source in sources}
                order.append(group)
            for source in sources:
                grouped[group][source].append(row[source])
        schema = [self.column_def(key) for key in keys]
        for out, (source, agg) in aggregations.items():
            if agg == "count":
                out_type = "int"
            elif agg in ("mean", "geomean"):
                out_type = "float"
            else:  # sum/min/max/first preserve the source column's type
                out_type = self.column_def(source).type
            schema.append(Column(out, type=out_type, kind="metric"))
        rows: List[Row] = []
        for group in order:
            row = dict(zip(keys, group))
            for out, (source, agg) in aggregations.items():
                row[out] = aggregate(agg, grouped[group][source])
            rows.append(row)
        return MetricFrame.from_rows(schema, rows)

    def pivot(self, index: Sequence[str], series: str, values: str) -> Pivot:
        """Spread ``values`` into a table: ``index`` tuples down, ``series`` across."""
        index = tuple(index)
        for name in (*index, series, values):
            self.column_def(name)
        cells: Dict[Tuple[Tuple[Any, ...], Any], Any] = {}
        index_keys: List[Tuple[Any, ...]] = []
        labels: List[Any] = []
        for row in self.rows():
            key = tuple(row[name] for name in index)
            label = row[series]
            if (key, label) in cells:
                raise AnalysisError(
                    f"pivot cell ({key}, {label!r}) is covered by more than one row; "
                    "aggregate with group_by first"
                )
            cells[(key, label)] = row[values]
            if key not in index_keys:
                index_keys.append(key)
            if label not in labels:
                labels.append(label)
        return Pivot(index, tuple(index_keys), tuple(labels), cells)

    # ------------------------------------------------------- derived metrics
    def speedup_over(
        self,
        baseline: Any,
        series: str = "config",
        values: str = "cycles",
        out: str = "speedup",
        ignore: Sequence[str] = (),
    ) -> "MetricFrame":
        """Per-row speedup relative to the ``series == baseline`` sibling row.

        Sibling rows are matched on every *dimension* column except
        ``series`` itself and any in ``ignore`` (e.g. ``ignore=("backoff",)``
        when the baseline configuration has no MAC to sweep).  Missing or
        ambiguous baselines raise :class:`AnalysisError`.
        """
        excluded = {series, *ignore}
        match_dims = tuple(name for name in self.dimensions() if name not in excluded)
        baselines: Dict[Tuple[Any, ...], Any] = {}
        for row in self.rows():
            if row[series] != baseline:
                continue
            key = tuple(row[name] for name in match_dims)
            if key in baselines:
                raise AnalysisError(
                    f"ambiguous baseline {series}={baseline!r} for {dict(zip(match_dims, key))}"
                )
            baselines[key] = row[values]

        def compute(row: Row) -> float:
            key = tuple(row[name] for name in match_dims)
            if key not in baselines:
                raise AnalysisError(
                    f"no baseline {series}={baseline!r} row matching {dict(zip(match_dims, key))}"
                )
            return speedup(baselines[key], row[values])

        return self.derive(out, compute)

    def cycles_per_op(
        self,
        out: str = "cycles_per_op",
        cycles: str = "cycles",
        operations: str = "operations",
        default: object = RAISE,
    ) -> "MetricFrame":
        """Cycles per completed operation (normalizes across contention levels)."""
        return self.derive(
            out, lambda row: cycles_per_operation(row[cycles], row[operations], default=default)
        )

    def ops_per_kcycle(
        self,
        out: str = "ops_per_kcycle",
        cycles: str = "cycles",
        operations: str = "operations",
        default: object = RAISE,
    ) -> "MetricFrame":
        """Completed operations per 1000 cycles (the Figure 9 axis, generalized)."""
        return self.derive(
            out,
            lambda row: throughput_per_kcycle(row[operations], row[cycles], default=default),
        )

    def events_per_sec(
        self,
        out: str = "events_per_sec",
        events: str = "events",
        wall: str = "wall_seconds",
    ) -> "MetricFrame":
        """Simulator throughput per row (None for cached rows with no timing)."""

        def compute(row: Row) -> Optional[float]:
            seconds = row.get(wall)
            if seconds is None or seconds <= 0:
                return None
            return row[events] / seconds

        return self.derive(out, compute)

    def geomean(self, values: str) -> float:
        """Geometric mean of one metric column over all rows."""
        return aggregate("geomean", self.column(values))

    # -------------------------------------------------------- serialization
    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "format": FRAME_FORMAT,
            "schema": [column.to_dict() for column in self.schema],
            "columns": {name: list(self._columns[name]) for name in self.column_names},
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "MetricFrame":
        if payload.get("format") != FRAME_FORMAT:
            raise AnalysisError(
                f"not a MetricFrame payload (format={payload.get('format')!r}, "
                f"expected {FRAME_FORMAT!r})"
            )
        schema = tuple(Column.from_dict(entry) for entry in payload["schema"])
        return cls(schema, payload["columns"])

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "MetricFrame":
        return cls.from_json_dict(json.loads(text))

    def to_csv(self) -> str:
        """CSV with a typed header (``name:type:kind``); None cells are ``\\N``.

        Rows terminate with CRLF (RFC 4180): with a bare-LF terminator the
        csv writer would leave a lone ``\\r`` inside a string cell unquoted,
        which the reader rejects — CRLF makes every embedded CR/LF quoted.
        """
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\r\n")
        writer.writerow(f"{c.name}:{c.type}:{c.kind}" for c in self.schema)
        for row in self.rows():
            writer.writerow(
                _csv_encode(row[column.name], column) for column in self.schema
            )
        return buffer.getvalue()

    @classmethod
    def from_csv(cls, text: str) -> "MetricFrame":
        reader = csv.reader(io.StringIO(text))
        try:
            header = next(reader)
        except StopIteration:
            raise AnalysisError("empty CSV: no header row")
        schema: List[Column] = []
        for cell in header:
            parts = cell.split(":")
            if len(parts) != 3:
                raise AnalysisError(f"CSV header cell {cell!r} is not name:type:kind")
            schema.append(Column(*parts))
        rows: List[Row] = []
        for line in reader:
            if len(line) != len(schema):
                raise AnalysisError(f"CSV row has {len(line)} cells, schema has {len(schema)}")
            rows.append(
                {column.name: _csv_decode(cell, column) for column, cell in zip(schema, line)}
            )
        return cls.from_rows(tuple(schema), rows)


def _csv_encode(value: Any, column: Column) -> str:
    if value is None:
        return _CSV_NONE
    if column.type == "str":
        return value.replace("\\", "\\\\")
    if column.type == "bool":
        return "true" if value else "false"
    if column.type == "float":
        return repr(value)
    if column.type == "json":
        return json.dumps(value, sort_keys=True)
    return str(value)


def _csv_decode(cell: str, column: Column) -> Any:
    if cell == _CSV_NONE:
        return None
    if column.type == "str":
        return cell.replace("\\\\", "\\")
    if column.type == "bool":
        if cell not in ("true", "false"):
            raise AnalysisError(f"bad bool cell {cell!r} in column {column.name!r}")
        return cell == "true"
    if column.type == "int":
        return int(cell)
    if column.type == "float":
        return float(cell)
    return json.loads(cell)


# ---------------------------------------------------------------------------
# Frames from sweep results
# ---------------------------------------------------------------------------
#: Fixed columns of a sweep frame, in presentation order.
_SWEEP_DIMS: Tuple[Column, ...] = (
    Column("sweep", "str", "dim"),
    Column("workload", "str", "dim"),
    Column("config", "str", "dim"),
    Column("variant", "str", "dim"),
    Column("backoff", "str", "dim"),
    Column("cores", "int", "dim"),
    Column("seed", "int", "dim"),
    Column("max_cycles", "int", "dim"),
)
_SWEEP_METRICS: Tuple[Column, ...] = (
    Column("cycles", "int", "metric"),
    Column("events", "int", "metric"),
    Column("wireless_messages", "int", "metric"),
    Column("wireless_collisions", "int", "metric"),
    Column("data_busy_cycles", "int", "metric"),
    Column("data_channel_utilization", "float", "metric"),
    Column("finished_threads", "int", "metric"),
    Column("total_threads", "int", "metric"),
    Column("completed", "bool", "metric"),
    Column("cached", "bool", "metric"),
)
_RESERVED = {column.name for column in _SWEEP_DIMS + _SWEEP_METRICS}


def _infer_type(values: Iterable[Any]) -> str:
    kinds = set()
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            kinds.add("bool")
        elif isinstance(value, int):
            kinds.add("int")
        elif isinstance(value, float):
            kinds.add("float")
        elif isinstance(value, str):
            kinds.add("str")
        else:
            kinds.add("json")
    if not kinds:
        return "json"
    if kinds == {"int"}:
        return "int"
    if kinds <= {"int", "float"}:
        return "float"
    if len(kinds) == 1:
        return kinds.pop()
    return "json"


def _split_variant(variant: Optional[str]) -> Tuple[Optional[str], str]:
    """(sensitivity variant, backoff kind) encoded in a spec's ``variant``."""
    from repro.config import BackoffConfig
    from repro.runner.executor import BACKOFF_VARIANT_PREFIX

    default_kind = BackoffConfig().kind
    if variant is not None and variant.startswith(BACKOFF_VARIANT_PREFIX):
        return None, variant[len(BACKOFF_VARIANT_PREFIX):]
    return variant, default_kind


def frame_from_sweep(outcome: Any) -> MetricFrame:
    """One row per grid point of a :class:`~repro.runner.runner.SweepResult`.

    Workload parameters and ``SimResult.extra`` entries are flattened into
    their own (nullable) columns.  Extras keep their bare name (they are the
    metrics the built-in derivations reference, e.g. ``operations`` for
    cycles/op); a parameter whose name collides with a fixed column or an
    extra is prefixed ``param_`` (an extra colliding with a fixed column is
    prefixed ``extra_``).
    """
    param_names: List[str] = []
    extra_names: List[str] = []
    raw_rows: List[Tuple[Any, Any]] = []
    for spec, result in outcome:
        raw_rows.append((spec, result))
        for name in spec.params_dict():
            if name not in param_names:
                param_names.append(name)
        for name in result.extra:
            if name not in extra_names:
                extra_names.append(name)

    extra_columns = {
        name: (f"extra_{name}" if name in _RESERVED else name) for name in extra_names
    }
    param_taken = _RESERVED | set(extra_columns.values())
    param_columns = {
        name: (f"param_{name}" if name in param_taken else name) for name in param_names
    }

    def extra_column(name: str) -> str:
        return extra_columns[name]

    def param_column(name: str) -> str:
        return param_columns[name]

    rows: List[Row] = []
    for spec, result in raw_rows:
        params = spec.params_dict()
        variant, backoff = _split_variant(spec.variant)
        row: Row = {
            "sweep": outcome.sweep.name,
            "workload": spec.workload,
            "config": spec.config,
            "variant": variant,
            "backoff": backoff,
            "cores": spec.num_cores,
            "seed": spec.seed,
            "max_cycles": spec.max_cycles,
            "cycles": result.total_cycles,
            "events": result.events_processed,
            "wireless_messages": result.wireless_messages,
            "wireless_collisions": result.wireless_collisions,
            "data_busy_cycles": result.data_channel_busy_cycles,
            "data_channel_utilization": result.data_channel_utilization(),
            "finished_threads": result.finished_threads,
            "total_threads": result.total_threads,
            "completed": result.completed,
            "cached": bool(getattr(outcome, "cached", {}).get(spec, False)),
        }
        for name in param_names:
            row[param_column(name)] = params.get(name)
        for name in extra_names:
            row[extra_column(name)] = result.extra.get(name)
        rows.append(row)

    schema: List[Column] = list(_SWEEP_DIMS)
    for name in param_names:
        values = [row[param_column(name)] for row in rows]
        schema.append(Column(param_column(name), _infer_type(values), "dim"))
    schema.extend(_SWEEP_METRICS)
    for name in extra_names:
        values = [row[extra_column(name)] for row in rows]
        schema.append(Column(extra_column(name), _infer_type(values), "metric"))
    return MetricFrame.from_rows(tuple(schema), rows)
