"""Plain-text table formatting for experiment output."""

from __future__ import annotations

from typing import Any, Dict, List, Sequence


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        if value >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Render a fixed-width text table (used by experiments and examples)."""
    rendered_rows = [[_format_value(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def rows_from_dict(mapping: Dict[str, Dict[str, Any]], key_header: str = "name") -> List[List[Any]]:
    """Flatten a nested dict (row name -> column dict) into table rows."""
    rows: List[List[Any]] = []
    for name, columns in mapping.items():
        row: List[Any] = [name]
        row.extend(columns.values())
        rows.append(row)
    return rows
