"""Plain-text table formatting for experiment output.

:func:`format_table` is the low-level fixed-width renderer.  The two
``render_*`` helpers above it are the *only* way experiment tables are
turned into text: they render the nested ``{row_key: {column: value}}``
mappings that :meth:`repro.analysis.frame.Pivot.to_dict` produces (and that
the legacy ``run_*`` functions return), so the declarative
:class:`~repro.analysis.report.Report` path and the legacy ``format_*``
wrappers are guaranteed to produce byte-identical tables.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

_MISSING_NAN = float("nan")


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        if value >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Render a fixed-width text table (used by experiments and examples)."""
    rendered_rows = [[_format_value(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def resolve_series(
    table: Mapping[Any, Mapping[Any, Any]],
    series_order: Optional[Sequence[Any]] = None,
    drop_series: Sequence[Any] = (),
    filter_present: bool = True,
    series_sort: bool = True,
) -> List[Any]:
    """The series labels (column keys) a pivot mapping should display.

    With ``series_order`` the labels keep that presentation order (filtered
    to the ones actually present unless ``filter_present`` is off);
    otherwise labels are collected from the rows, sorted or first-seen.
    """
    if series_order is not None:
        labels = [label for label in series_order if label not in drop_series]
        if filter_present:
            labels = [label for label in labels if any(label in row for row in table.values())]
        return labels
    labels = []
    for row in table.values():
        for label in row:
            if label not in labels and label not in drop_series:
                labels.append(label)
    return sorted(labels) if series_sort else labels


def render_mapping(
    table: Mapping[Any, Mapping[Any, Any]],
    index_headers: Sequence[str],
    title: str = "",
    series_order: Optional[Sequence[Any]] = None,
    series_headers: Optional[Mapping[Any, str]] = None,
    drop_series: Sequence[Any] = (),
    filter_present: bool = True,
    series_sort: bool = True,
    sort_rows: bool = False,
    missing: Any = _MISSING_NAN,
) -> str:
    """Render a pivot mapping (``{index: {series_label: value}}``) as text.

    Index keys may be scalars or tuples (one cell per ``index_headers``
    entry); rows keep mapping order unless ``sort_rows``.
    """
    labels = resolve_series(table, series_order, drop_series, filter_present, series_sort)
    headers = list(index_headers) + [
        (series_headers or {}).get(label, label) for label in labels
    ]
    keys = sorted(table) if sort_rows else list(table)
    rows: List[List[Any]] = []
    for key in keys:
        cells = list(key) if isinstance(key, tuple) else [key]
        cells.extend(table[key].get(label, missing) for label in labels)
        rows.append(cells)
    return format_table(headers, rows, title=title)


def render_columns(
    table: Mapping[Any, Mapping[str, Any]],
    columns: Sequence[Tuple[str, str]],
    key_header: str,
    title: str = "",
    missing: Any = "-",
) -> str:
    """Render row-name -> column-dict data with a fixed column list.

    ``columns`` pairs each source key with its display header; rows keep
    mapping order and missing cells render as ``missing`` (Table 4 uses
    ``"-"`` for the not-applicable RF-percentage cells).
    """
    headers = [key_header] + [header for _, header in columns]
    rows: List[List[Any]] = []
    for name, cols in table.items():
        row: List[Any] = [name]
        for key, _ in columns:
            value = cols.get(key)
            row.append(missing if value is None else value)
        rows.append(row)
    return format_table(headers, rows, title=title)


def rows_from_dict(mapping: Dict[str, Dict[str, Any]], key_header: str = "name") -> List[List[Any]]:
    """Flatten a nested dict (row name -> column dict) into table rows."""
    rows: List[List[Any]] = []
    for name, columns in mapping.items():
        row: List[Any] = [name]
        row.extend(columns.values())
        rows.append(row)
    return rows
