"""Declarative report definitions over :class:`~repro.analysis.frame.MetricFrame`.

A :class:`Report` is the *presentation* of one experiment as data: which
derived columns to compute (``transforms``), which frame columns form the
row axes (``index``) and the column axis (``series``), which metric fills
the cells (``values``), how to order/filter the series labels, and which
aggregate rows (mean / geomean) to append.  The experiment modules each
declare one; ``python -m repro report`` renders them; the legacy
``run_*``/``format_*`` APIs are thin wrappers over :meth:`Report.table` and
:func:`~repro.analysis.tables.render_mapping`, so both paths produce
byte-identical tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.analysis.frame import MetricFrame, Pivot, aggregate
from repro.analysis.tables import render_columns, render_mapping, resolve_series
from repro.errors import AnalysisError

#: A frame-to-frame step applied before pivoting (derive, group_by, ...).
Transform = Callable[[MetricFrame], MetricFrame]


@dataclass(frozen=True)
class AggregateRow:
    """An extra row appended below a pivot (e.g. fig10's mean / geoMean).

    Aggregates each displayed series column over the pivot's rows, in row
    order.  ``series`` restricts the aggregate to a label subset (fig10
    excludes the Baseline column whose speedup is 1.0 by construction);
    ``clamp_min`` floors each input first (Table 5 guards its geomean
    against zero-utilization applications).
    """

    label: str
    agg: str
    series: Optional[Tuple[str, ...]] = None
    clamp_min: Optional[float] = None

    def compute(self, table: Mapping[Any, Dict[Any, Any]]) -> Dict[Any, float]:
        labels = self.series
        if labels is None:
            labels = tuple(resolve_series(table, series_sort=False))
        out: Dict[Any, float] = {}
        for label in labels:
            values = [row[label] for row in table.values() if label in row]
            if not values:
                continue  # no input rows for this series: no aggregate cell
            if self.clamp_min is not None:
                values = [max(self.clamp_min, value) for value in values]
            out[label] = aggregate(self.agg, values)
        return out


@dataclass(frozen=True)
class Report:
    """How one experiment's frame becomes a table (and a rendered string)."""

    name: str
    title: str
    index: Tuple[str, ...]
    values: str
    series: Optional[str] = None
    transforms: Tuple[Transform, ...] = ()
    filters: Tuple[Tuple[str, Any], ...] = ()
    aggregates: Tuple[AggregateRow, ...] = ()
    # Presentation knobs (mirrored into render_mapping):
    index_headers: Optional[Tuple[str, ...]] = None
    series_order: Optional[Tuple[str, ...]] = None
    series_headers: Tuple[Tuple[str, str], ...] = ()
    drop_series: Tuple[str, ...] = ()
    filter_present: bool = True
    series_sort: bool = True
    sort_rows: bool = False
    missing: Any = field(default_factory=lambda: float("nan"))
    # series=None reports render a plain column table instead of a pivot:
    value_columns: Tuple[Tuple[str, str], ...] = ()

    # ------------------------------------------------------------- pipeline
    def prepare(self, frame: MetricFrame) -> MetricFrame:
        """Apply the report's filters and derived-column transforms."""
        if self.filters:
            frame = frame.where(**dict(self.filters))
        for transform in self.transforms:
            frame = transform(frame)
        return frame

    def pivot(self, frame: MetricFrame, prepared: bool = False) -> Pivot:
        if self.series is None:
            raise AnalysisError(f"report {self.name!r} has no series axis to pivot on")
        if not prepared:
            frame = self.prepare(frame)
        return frame.pivot(self.index, self.series, self.values)

    def table(self, frame: MetricFrame, prepared: bool = False) -> Dict[Any, Dict[Any, Any]]:
        """The legacy nested mapping: ``{index: {series_label: value}}``."""
        if not prepared:
            frame = self.prepare(frame)
        if self.series is None:
            table: Dict[Any, Dict[Any, Any]] = {}
            for row in frame.rows():
                key = tuple(row[name] for name in self.index)
                table[key[0] if len(self.index) == 1 else key] = {
                    source: row[source] for source, _ in self.value_columns
                    if row[source] is not None
                }
            return table
        table = self.pivot(frame, prepared=True).to_dict()
        base = dict(table)  # aggregates summarize the pivot rows, not each other
        for extra in self.aggregates:
            cells = extra.compute(base)
            if cells:
                table[extra.label] = cells
        return table

    def render_table(self, table: Mapping[Any, Dict[Any, Any]]) -> str:
        """Render an already-built table mapping (the legacy ``format_*`` path)."""
        if self.series is None:
            return render_columns(
                table,
                columns=self.value_columns,
                key_header=(self.index_headers or self.index)[0],
                title=self.title,
            )
        return render_mapping(
            table,
            index_headers=self.index_headers or self.index,
            title=self.title,
            series_order=self.series_order,
            series_headers=dict(self.series_headers),
            drop_series=self.drop_series,
            filter_present=self.filter_present,
            series_sort=self.series_sort,
            sort_rows=self.sort_rows,
            missing=self.missing,
        )

    def render(self, frame: MetricFrame, prepared: bool = False) -> str:
        return self.render_table(self.table(frame, prepared=prepared))

    # ---------------------------------------------------------- convenience
    def with_series_order(self, order: Sequence[str]) -> "Report":
        return replace(self, series_order=tuple(order))


# ---------------------------------------------------------------------------
# Transform combinators (the vocabulary Report definitions are written in)
# ---------------------------------------------------------------------------
def derive(name: str, fn: Callable[[Dict[str, Any]], Any], type: str = "float") -> Transform:
    """Transform: append a row-computed column."""
    return lambda frame: frame.derive(name, fn, type=type)


def ratio_of(name: str, numerator: str, denominator: str) -> Transform:
    """Transform: ``numerator / denominator`` per row (e.g. cycles/iteration)."""
    return lambda frame: frame.derive(name, lambda row: row[numerator] / row[denominator])


def speedup_over(
    baseline: str, series: str = "config", values: str = "cycles",
    out: str = "speedup", ignore: Sequence[str] = (),
) -> Transform:
    """Transform: per-row speedup against the matching baseline-series row."""
    return lambda frame: frame.speedup_over(
        baseline, series=series, values=values, out=out, ignore=ignore
    )


def where(**equals: Any) -> Transform:
    """Transform: keep rows matching the per-column constraints."""
    return lambda frame: frame.where(**equals)


def group_by(keys: Sequence[str], **aggregations: Tuple[str, str]) -> Transform:
    """Transform: aggregate rows; kwargs map output column to (source, agg)."""
    return lambda frame: frame.group_by(tuple(keys), aggregations)
