"""Area and power comparison model (Table 4).

Compares the estimated area and TDP of the WiSync RF front end (transceiver
plus two antennas, from the Section 2 scaling model) against two popular
22 nm cores: the high-performance Xeon Haswell core and the energy-efficient
Atom Silvermont core, exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.wireless.link_budget import wisync_rf_budget


@dataclass(frozen=True)
class CoreReference:
    """Published per-core area and (frequency-corrected) TDP at 22 nm."""

    name: str
    area_mm2: float
    tdp_w: float
    source_note: str


#: Reference cores used by the paper.  The Haswell per-core TDP is the 18-core
#: 135 W chip corrected to 1 GHz (~5 W/core); the Silvermont figure is the
#: 8-core 12 W Avoton corrected to 1 GHz (~1 W/core).
CORE_REFERENCES: List[CoreReference] = [
    CoreReference("Xeon Haswell", area_mm2=21.1, tdp_w=5.0,
                  source_note="18-core 135W at 2.1GHz, scaled to 1GHz"),
    CoreReference("Atom Silvermont", area_mm2=2.5, tdp_w=1.0,
                  source_note="8-core Avoton 12W at 1.7GHz, scaled to 1GHz"),
]


def area_power_table(technology_nm: int = 22) -> Dict[str, Dict[str, float]]:
    """Regenerate Table 4: T+2A cost and its percentage of each core.

    Returns a mapping from row name to a dictionary with the transceiver
    area/power and the percentages relative to each reference core.
    """
    rf = wisync_rf_budget(technology_nm)
    table: Dict[str, Dict[str, float]] = {
        "transceiver+2antennas": {
            "area_mm2": rf.area_mm2,
            "power_w": rf.power_mw / 1000.0,
        }
    }
    for core in CORE_REFERENCES:
        table[core.name] = {
            "area_mm2": core.area_mm2,
            "power_w": core.tdp_w,
            "rf_area_percent": 100.0 * rf.area_mm2 / core.area_mm2,
            "rf_power_percent": 100.0 * (rf.power_mw / 1000.0) / core.tdp_w,
        }
    return table
