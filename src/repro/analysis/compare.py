"""Frame-to-frame comparison: the single baseline-gating implementation.

``python -m repro compare a.json b.json`` diffs two result payloads — either
serialized :class:`~repro.analysis.frame.MetricFrame`\\ s (written by
``repro report --json``) or ``BENCH_*.json`` records (written by ``repro
profile``) — joining rows on their shared dimension columns and checking
per-metric regression thresholds.  The profile harness's ``--baseline`` gate
and the CI perf-smoke job both go through :func:`compare_frames`, so there
is exactly one definition of "regressed" in the repository.

Direction matters: cycles regress *up*, events/sec regresses *down*.
Metrics listed in :data:`HIGHER_IS_BETTER` (or prefixed accordingly) gate on
drops; everything else gates on increases.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.frame import FRAME_FORMAT, Column, MetricFrame
from repro.analysis.tables import format_table
from repro.errors import AnalysisError

#: Metrics where a larger value is an improvement; all other numeric metrics
#: are treated as costs (larger is worse).
HIGHER_IS_BETTER = frozenset(
    {"events_per_sec", "ops_per_kcycle", "speedup", "throughput", "operations",
     "finished_threads", "total_threads"}
)

#: Metrics that are bookkeeping, not gateable quantities; excluded from the
#: default comparison set (an explicit --metrics still selects them).
_NEVER_GATED = frozenset(
    {"completed", "cached", "quick", "finished_threads", "total_threads"}
)

#: Wall-clock metrics vary run to run even on one machine; the blanket
#: ``default_threshold`` skips them (an explicit per-metric threshold still
#: gates them when a caller really wants that).
NOISY_METRICS = frozenset({"wall_seconds"})


def metric_direction(name: str) -> str:
    """``"higher"`` or ``"lower"`` — which way ``name`` improves."""
    if name in HIGHER_IS_BETTER or name.endswith("_per_sec") or name.startswith("speedup"):
        return "higher"
    return "lower"


@dataclass(frozen=True)
class MetricDelta:
    """One (row, metric) pair present in both frames."""

    metric: str
    key: Tuple[Any, ...]
    baseline: float
    candidate: float

    @property
    def change(self) -> float:
        """Signed worsening fraction: positive means the candidate regressed.

        A zero baseline has no finite relative change: any movement away
        from it is reported as +/-inf so a regression from zero (e.g. the
        baseline had no collisions, the candidate has hundreds) trips every
        finite threshold instead of masquerading as 0%.
        """
        higher_is_better = metric_direction(self.metric) == "higher"
        if self.baseline == 0:
            if self.candidate == 0:
                return 0.0
            worsened = (self.candidate < 0) if higher_is_better else (self.candidate > 0)
            return float("inf") if worsened else float("-inf")
        drift = (self.candidate - self.baseline) / abs(self.baseline)
        return -drift if higher_is_better else drift


@dataclass
class FrameComparison:
    """Outcome of :func:`compare_frames`."""

    dims: Tuple[str, ...]
    deltas: List[MetricDelta]
    thresholds: Dict[str, float]
    failures: List[str] = field(default_factory=list)
    baseline_only: int = 0
    candidate_only: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def worst(self, metric: str) -> Optional[MetricDelta]:
        candidates = [delta for delta in self.deltas if delta.metric == metric]
        return max(candidates, key=lambda delta: delta.change) if candidates else None

    def metrics(self) -> List[str]:
        seen: List[str] = []
        for delta in self.deltas:
            if delta.metric not in seen:
                seen.append(delta.metric)
        return seen

    def to_dict(self) -> Dict[str, Any]:
        return {
            "joined_on": list(self.dims),
            "rows_baseline_only": self.baseline_only,
            "rows_candidate_only": self.candidate_only,
            "thresholds": dict(self.thresholds),
            "failures": list(self.failures),
            "metrics": {
                metric: {
                    "worst_key": list(worst.key),
                    "baseline": worst.baseline,
                    "candidate": worst.candidate,
                    "worst_change": worst.change,
                    "direction": metric_direction(metric),
                    "threshold": self.thresholds.get(metric),
                }
                for metric in self.metrics()
                for worst in (self.worst(metric),)
            },
        }

    def render(self) -> str:
        headers = ["metric", "dir", "rows", "worst change", "baseline", "candidate", "threshold", "status"]
        rows: List[List[Any]] = []
        for metric in self.metrics():
            worst = self.worst(metric)
            count = sum(1 for delta in self.deltas if delta.metric == metric)
            threshold = self.thresholds.get(metric)
            gated = threshold is not None
            status = "-"
            if gated:
                status = "FAIL" if worst.change > threshold else "ok"
            rows.append([
                metric,
                metric_direction(metric),
                count,
                f"{worst.change * 100:+.1f}%",
                worst.baseline,
                worst.candidate,
                f"{threshold * 100:.0f}%" if gated else "-",
                status,
            ])
        lines = [format_table(headers, rows, title=f"compare (joined on {', '.join(self.dims)})")]
        if self.baseline_only or self.candidate_only:
            lines.append(
                f"unmatched rows: {self.baseline_only} baseline-only, "
                f"{self.candidate_only} candidate-only"
            )
        lines.extend(f"FAIL: {failure}" for failure in self.failures)
        return "\n".join(lines)


def compare_frames(
    baseline: MetricFrame,
    candidate: MetricFrame,
    metrics: Optional[Sequence[str]] = None,
    thresholds: Optional[Mapping[str, float]] = None,
    default_threshold: Optional[float] = None,
) -> FrameComparison:
    """Join two frames on their shared dimensions and diff their metrics.

    ``metrics`` defaults to every numeric metric column present in both
    frames.  A metric is *gated* when it has an entry in ``thresholds`` or
    when ``default_threshold`` is set; a gated metric fails when any joined
    row worsens by more than the threshold fraction (direction-aware).
    """
    dims = tuple(
        name for name in baseline.dimensions()
        if name in candidate.dimensions()
        and baseline.column_def(name).type == candidate.column_def(name).type
    )
    if not dims:
        raise AnalysisError("frames share no dimension columns; nothing to join on")

    def numeric_metrics(frame: MetricFrame) -> List[str]:
        return [
            name for name in frame.metrics()
            if frame.column_def(name).type in ("int", "float") and name not in _NEVER_GATED
        ]

    if metrics is None:
        candidates = numeric_metrics(candidate)
        metrics = [name for name in numeric_metrics(baseline) if name in candidates]
    else:
        for name in metrics:
            for frame in (baseline, candidate):
                if frame.column_def(name).type not in ("int", "float"):
                    raise AnalysisError(
                        f"metric {name!r} is {frame.column_def(name).type}, "
                        "not a numeric column; only int/float metrics can be compared"
                    )
    if not metrics:
        raise AnalysisError("frames share no numeric metric columns to compare")

    def keyed(frame: MetricFrame) -> Dict[Tuple[Any, ...], Dict[str, Any]]:
        out: Dict[Tuple[Any, ...], Dict[str, Any]] = {}
        for row in frame.rows():
            key = tuple(row[name] for name in dims)
            if key in out:
                raise AnalysisError(
                    f"duplicate dimension key {dict(zip(dims, key))} in frame; "
                    "aggregate with group_by before comparing"
                )
            out[key] = row
        return out

    base_rows = keyed(baseline)
    cand_rows = keyed(candidate)
    shared = [key for key in base_rows if key in cand_rows]
    if not shared:
        raise AnalysisError(
            "frames have no overlapping rows after joining on "
            f"{list(dims)} — are these results of the same sweep?"
        )

    resolved: Dict[str, float] = dict(thresholds or {})
    unknown = sorted(set(resolved) - set(metrics))
    if unknown:
        # A gate on a metric that is not being compared would silently pass
        # forever — exactly the failure mode a gate exists to prevent.
        raise AnalysisError(
            f"threshold(s) on metrics not being compared: {unknown}; "
            f"compared metrics are {sorted(metrics)} "
            "(derive the column first, or fix the --threshold/--metrics spelling)"
        )
    if default_threshold is not None:
        for name in metrics:
            if name not in NOISY_METRICS:
                resolved.setdefault(name, default_threshold)

    deltas: List[MetricDelta] = []
    for key in shared:
        for name in metrics:
            base_value = base_rows[key][name]
            cand_value = cand_rows[key][name]
            if base_value is None or cand_value is None:
                continue
            deltas.append(MetricDelta(name, key, base_value, cand_value))

    comparison = FrameComparison(
        dims=dims,
        deltas=deltas,
        thresholds=resolved,
        baseline_only=len(base_rows) - len(shared),
        candidate_only=len(cand_rows) - len(shared),
    )
    explicitly_gated = set(thresholds or {})
    for name, threshold in resolved.items():
        worst = comparison.worst(name)
        if worst is None:
            # No comparable (non-None) pairs.  An explicitly requested gate
            # that cannot check anything must not silently pass; a blanket
            # default_threshold is best-effort and skips the metric.
            if name in explicitly_gated:
                comparison.failures.append(
                    f"threshold on {name!r} but no comparable rows "
                    "(every joined pair has a missing value)"
                )
            continue
        if worst.change <= threshold:
            continue
        direction = "below" if metric_direction(name) == "higher" else "above"
        comparison.failures.append(
            f"{name} regression at {dict(zip(dims, worst.key))}: "
            f"{worst.candidate:,.1f} is {worst.change * 100:.1f}% {direction} "
            f"baseline {worst.baseline:,.1f} (allowed {threshold * 100:.0f}%)"
        )
    return comparison


# ---------------------------------------------------------------------------
# Payload loading (frame JSON or BENCH_*.json records)
# ---------------------------------------------------------------------------
_BENCH_SCHEMA: Tuple[Column, ...] = (
    Column("experiment", "str", "dim"),
    Column("quick", "bool", "metric"),
    Column("grid_points", "int", "metric"),
    Column("events", "int", "metric"),
    Column("wall_seconds", "float", "metric"),
    Column("events_per_sec", "float", "metric"),
)


def bench_frame(record: Mapping[str, Any]) -> MetricFrame:
    """A ``repro profile`` benchmark record as a one-row frame."""
    missing = [c.name for c in _BENCH_SCHEMA if c.name != "quick" and c.name not in record]
    if missing:
        raise AnalysisError(f"benchmark record is missing fields: {missing}")
    row = {column.name: record.get(column.name) for column in _BENCH_SCHEMA}
    row["quick"] = bool(record.get("quick", False))
    row["wall_seconds"] = float(record["wall_seconds"])
    row["events_per_sec"] = float(record["events_per_sec"])
    return MetricFrame.from_rows(_BENCH_SCHEMA, [row])


def frame_from_payload(payload: Mapping[str, Any]) -> MetricFrame:
    """Interpret a parsed JSON payload as a frame (auto-detects the kind)."""
    if payload.get("format") == FRAME_FORMAT:
        return MetricFrame.from_json_dict(payload)
    if "events_per_sec" in payload:
        return bench_frame(payload)
    raise AnalysisError(
        "unrecognized payload: expected a MetricFrame JSON "
        f"(format={FRAME_FORMAT!r}, from 'repro report --json') or a "
        "BENCH_*.json profile record"
    )


def load_frame(path: str) -> MetricFrame:
    """Load a frame or benchmark record from ``path``."""
    try:
        with open(path, "r", encoding="utf-8") as stream:
            payload = json.load(stream)
    except (OSError, ValueError) as error:
        raise AnalysisError(f"cannot read {path!r}: {error}")
    return frame_from_payload(payload)
