"""Analysis helpers: metrics, the Table 4 area/power model, and table text."""

from repro.analysis.area_power import CORE_REFERENCES, CoreReference, area_power_table
from repro.analysis.metrics import speedup, speedups_over_baseline, throughput_per_kcycle
from repro.analysis.tables import format_table

__all__ = [
    "CoreReference",
    "CORE_REFERENCES",
    "area_power_table",
    "speedup",
    "speedups_over_baseline",
    "throughput_per_kcycle",
    "format_table",
]
