"""Analysis layer: MetricFrame, declarative reports, comparisons, metrics.

* :mod:`repro.analysis.frame` — the typed, queryable, columnar
  :class:`MetricFrame` every results consumer is built on.
* :mod:`repro.analysis.report` — declarative :class:`Report` definitions
  (the experiment modules each declare one).
* :mod:`repro.analysis.compare` — frame diffing with per-metric regression
  thresholds (``repro compare``, the profile gate, CI perf-smoke).
* :mod:`repro.analysis.metrics` — scalar metric functions with validated
  denominators.
* :mod:`repro.analysis.area_power` / :mod:`repro.analysis.tables` — the
  Table 4 analytical model and fixed-width text rendering.
"""

from repro.analysis.area_power import CORE_REFERENCES, CoreReference, area_power_table
from repro.analysis.compare import (
    FrameComparison,
    MetricDelta,
    bench_frame,
    compare_frames,
    load_frame,
)
from repro.analysis.frame import Column, MetricFrame, Pivot, frame_from_sweep
from repro.analysis.metrics import (
    cycles_per_operation,
    speedup,
    speedups_over_baseline,
    throughput_per_kcycle,
)
from repro.analysis.report import AggregateRow, Report
from repro.analysis.tables import format_table, render_columns, render_mapping

__all__ = [
    "CoreReference",
    "CORE_REFERENCES",
    "area_power_table",
    "speedup",
    "speedups_over_baseline",
    "throughput_per_kcycle",
    "cycles_per_operation",
    "Column",
    "MetricFrame",
    "Pivot",
    "frame_from_sweep",
    "Report",
    "AggregateRow",
    "FrameComparison",
    "MetricDelta",
    "compare_frames",
    "bench_frame",
    "load_frame",
    "format_table",
    "render_mapping",
    "render_columns",
]
