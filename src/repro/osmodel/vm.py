"""Per-process virtual view of the broadcast memory.

The OS maps each process's virtual BM pages onto the (small) physical BM.
Different processes can share the same physical page and own disjoint 64-bit
chunks of it (Section 4.4); chunk-level protection itself is enforced by the
PID tags in :class:`~repro.core.broadcast_memory.BroadcastMemory`, while this
class handles the page-level mapping the TLB performs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.config import BroadcastMemoryConfig
from repro.core.translation import BmTlb
from repro.errors import AllocationError


@dataclass
class BmVirtualMemory:
    """Page-level BM mapping shared by all processes."""

    config: BroadcastMemoryConfig
    tlb: BmTlb = field(default=None)  # type: ignore[assignment]
    _next_virtual_page: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.tlb is None:
            self.tlb = BmTlb(self.config)

    def ensure_mapping(self, pid: int, physical_addr: int) -> int:
        """Return the virtual address of a physical BM entry for ``pid``.

        Creates the page mapping lazily the first time a process touches a
        physical page; every process gets its own virtual page numbers.
        """
        physical_page = physical_addr // self.config.entries_per_page
        if physical_page >= self.config.num_pages:
            raise AllocationError(
                f"physical BM page {physical_page} does not exist "
                f"(BM has {self.config.num_pages} pages)"
            )
        existing = self.tlb.reverse_translate(pid, physical_addr)
        if existing is not None:
            return existing
        virtual_page = self._next_virtual_page.get(pid, 0)
        self._next_virtual_page[pid] = virtual_page + 1
        self.tlb.map_page(pid, virtual_page, physical_page)
        offset = physical_addr % self.config.entries_per_page
        return virtual_page * self.config.entries_per_page + offset

    def translate(self, pid: int, virtual_addr: int, for_write: bool = False) -> int:
        return self.tlb.translate(pid, virtual_addr, for_write)

    def mappings_for(self, pid: int) -> List[int]:
        return [m.physical_page for m in self.tlb.mappings_for(pid)]

    def release_process(self, pid: int) -> None:
        """Drop every mapping of a terminating process."""
        for mapping in list(self.tlb.mappings_for(pid)):
            self.tlb.unmap_page(pid, mapping.virtual_page)
        self._next_virtual_page.pop(pid, None)
