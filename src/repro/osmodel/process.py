"""Processes and the process table.

Every broadcast-memory chunk is tagged with the PID of the process that
allocated it, so the OS model's main job here is to hand out PIDs and track
which processes are alive for protection and cleanup purposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ReproError


@dataclass
class OsProcess:
    """One running program on the manycore."""

    pid: int
    name: str
    thread_ids: List[int] = field(default_factory=list)
    bm_allocations: List[int] = field(default_factory=list)
    alive: bool = True

    def add_thread(self, thread_id: int) -> None:
        self.thread_ids.append(thread_id)

    def record_allocation(self, base_addr: int) -> None:
        self.bm_allocations.append(base_addr)


class ProcessTable:
    """Allocates PIDs and tracks live processes (multiprogramming support)."""

    def __init__(self, max_pid: int = 255) -> None:
        self.max_pid = max_pid
        self._processes: Dict[int, OsProcess] = {}
        self._next_pid = 1

    def spawn(self, name: str) -> OsProcess:
        if self._next_pid > self.max_pid:
            raise ReproError("process table full: PID space exhausted")
        process = OsProcess(pid=self._next_pid, name=name)
        self._processes[process.pid] = process
        self._next_pid += 1
        return process

    def get(self, pid: int) -> OsProcess:
        if pid not in self._processes:
            raise ReproError(f"no such process: pid={pid}")
        return self._processes[pid]

    def exists(self, pid: int) -> bool:
        return pid in self._processes

    def terminate(self, pid: int) -> OsProcess:
        process = self.get(pid)
        process.alive = False
        return process

    def live_processes(self) -> List[OsProcess]:
        return [p for p in self._processes.values() if p.alive]

    def __len__(self) -> int:
        return len(self._processes)
