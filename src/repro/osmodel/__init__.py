"""Operating-system model: processes, BM virtual memory, scheduling.

WiSync is designed to work under multiprogramming, virtual memory, context
switching and (when the Tone channel is not used) thread migration
(Sections 3.1 and 5.2).  This package provides the OS-level pieces: a process
table with PIDs, per-process virtual mapping of broadcast-memory pages, and a
scheduler that supports preemption and migration with the paper's tone-
barrier restriction.
"""

from repro.osmodel.process import OsProcess, ProcessTable
from repro.osmodel.scheduler import Scheduler, ThreadPlacement
from repro.osmodel.vm import BmVirtualMemory

__all__ = ["OsProcess", "ProcessTable", "Scheduler", "ThreadPlacement", "BmVirtualMemory"]
