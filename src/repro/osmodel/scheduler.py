"""Thread placement, preemption, and migration.

Section 5.2: threads may be preempted and rescheduled freely because the BM
state is identical in every node; threads may also migrate to another core —
*unless* they participate in a tone barrier, because the Armed bit of the
AllocB entry lives in the node's tone controller and would have to be
migrated with them.  Two threads on the same core may not use the same tone
barrier either.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import ConfigurationError, ToneBarrierError


@dataclass
class ThreadPlacement:
    """Where a thread runs and which tone barriers it participates in."""

    thread_id: int
    core_id: int
    pid: int
    tone_barriers: Set[int] = field(default_factory=set)
    preempted: bool = False


class Scheduler:
    """Simple placement-tracking scheduler with WiSync's migration rules."""

    def __init__(self, num_cores: int) -> None:
        self.num_cores = num_cores
        self._placements: Dict[int, ThreadPlacement] = {}
        self._core_load: Dict[int, int] = {core: 0 for core in range(num_cores)}
        self.migrations = 0
        self.preemptions = 0

    # -------------------------------------------------------------- placing
    def place(self, thread_id: int, pid: int, core_id: Optional[int] = None) -> ThreadPlacement:
        """Place a new thread, round-robin by load when no core is given."""
        if core_id is None:
            core_id = min(self._core_load, key=lambda c: (self._core_load[c], c))
        if not 0 <= core_id < self.num_cores:
            raise ConfigurationError(f"core {core_id} out of range")
        placement = ThreadPlacement(thread_id=thread_id, core_id=core_id, pid=pid)
        self._placements[thread_id] = placement
        self._core_load[core_id] += 1
        return placement

    def placement(self, thread_id: int) -> ThreadPlacement:
        return self._placements[thread_id]

    def threads_on(self, core_id: int) -> List[int]:
        return [t for t, p in self._placements.items() if p.core_id == core_id]

    # --------------------------------------------------------- tone barriers
    def register_tone_barrier(self, thread_id: int, bm_addr: int) -> None:
        """Record tone-barrier participation (restricts migration and sharing)."""
        placement = self._placements[thread_id]
        for other_id in self.threads_on(placement.core_id):
            if other_id == thread_id:
                continue
            other = self._placements[other_id]
            if bm_addr in other.tone_barriers:
                raise ToneBarrierError(
                    f"threads {thread_id} and {other_id} on core {placement.core_id} "
                    f"cannot both use tone barrier {bm_addr}"
                )
        placement.tone_barriers.add(bm_addr)

    # ----------------------------------------------------- preempt / migrate
    def preempt(self, thread_id: int) -> None:
        """Preemption is always legal: BM updates keep arriving while descheduled."""
        placement = self._placements[thread_id]
        placement.preempted = True
        self.preemptions += 1

    def resume(self, thread_id: int) -> None:
        self._placements[thread_id].preempted = False

    def can_migrate(self, thread_id: int) -> bool:
        """A thread participating in any tone barrier cannot migrate."""
        return not self._placements[thread_id].tone_barriers

    def migrate(self, thread_id: int, new_core: int) -> ThreadPlacement:
        placement = self._placements[thread_id]
        if placement.tone_barriers:
            raise ToneBarrierError(
                f"thread {thread_id} participates in tone barriers "
                f"{sorted(placement.tone_barriers)} and cannot migrate"
            )
        if not 0 <= new_core < self.num_cores:
            raise ConfigurationError(f"core {new_core} out of range")
        self._core_load[placement.core_id] -= 1
        self._core_load[new_core] += 1
        placement.core_id = new_core
        self.migrations += 1
        return placement
