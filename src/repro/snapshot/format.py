"""Versioned, integrity-hashed snapshot documents.

A snapshot file is a JSON envelope::

    {"format": "wisync-snapshot", "version": 2,
     "sha256": "<hash of canonical body>", "snapshot": {...body...}}

The hash is computed over the canonical JSON form of the body (sorted keys,
compact separators — the same canonicalization :meth:`RunSpec.key` uses), so
any bit flip, truncation, or hand edit is detected at load time.  Loading is
strict by default (:func:`load_snapshot` raises :class:`SnapshotError`);
callers that want the ResultCache-style "evict and fall back to from-scratch"
behaviour use :func:`try_load_snapshot`, which returns the failure reason
instead of raising so it can be surfaced as a structured
:class:`SnapshotWarning`.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.errors import SnapshotError
from repro.runner.spec import RunSpec

#: Document format marker; anything else is not a snapshot file.
SNAPSHOT_FORMAT = "wisync-snapshot"
#: Bump when the body layout changes; older/newer versions are rejected.
#: Version 2 added the ``machine`` payload (full native machine state for
#: frame-based workloads) and the thread-frame/sync sections of ``native``.
SNAPSHOT_VERSION = 2

#: Restore by re-running the spec to the recorded event count.  Universal:
#: works for every workload because all randomness is seeded, and verified
#: against the captured native state after the fast-forward.
STRATEGY_REPLAY = "replay"
#: Restore by rebuilding machine state directly from the captured ``machine``
#: payload — O(state) instead of O(events).  Available for workloads whose
#: threads run on serializable frame stacks; the restored machine is checked
#: against the ``native`` sections exactly like a replayed one.
STRATEGY_NATIVE = "native"

_STRATEGIES = (STRATEGY_REPLAY, STRATEGY_NATIVE)


class SnapshotWarning(UserWarning):
    """A checkpoint was unusable and execution fell back to from-scratch."""


def _canonical(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def body_hash(body: Dict[str, Any]) -> str:
    """sha256 of the canonical JSON form of a snapshot body."""
    return hashlib.sha256(_canonical(body).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Snapshot:
    """A point-in-time capture of one running :class:`RunSpec` simulation.

    ``events_processed`` is the replay cursor: re-running ``spec`` for
    exactly that many events reproduces the machine bit-for-bit.  ``native``
    carries everything enumerable about the captured machine (engine
    counters, the rng derivation tree, stats, per-thread progress) and is
    compared against the fast-forwarded machine on restore, so drift between
    the code that saved and the code that restores is detected instead of
    silently producing a wrong continuation.

    ``machine`` is the full native-restore payload produced by
    :func:`repro.snapshot.native.capture_machine`; it is present exactly when
    ``strategy`` is :data:`STRATEGY_NATIVE` and lets a restore rebuild the
    machine in O(state) without replaying a single event.
    """

    spec: RunSpec
    events_processed: int
    clock: int
    strategy: str = STRATEGY_REPLAY
    native: Dict[str, Any] = field(default_factory=dict)
    machine: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if self.strategy not in _STRATEGIES:
            raise SnapshotError(
                f"unknown snapshot strategy {self.strategy!r}; "
                f"expected one of {_STRATEGIES}"
            )
        if self.events_processed < 0:
            raise SnapshotError("snapshot events_processed cannot be negative")

    # -------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "spec_key": self.spec.key(),
            "events_processed": self.events_processed,
            "clock": self.clock,
            "strategy": self.strategy,
            "native": self.native,
            "machine": self.machine,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Snapshot":
        try:
            spec = RunSpec.from_dict(payload["spec"])
            snapshot = cls(
                spec=spec,
                events_processed=int(payload["events_processed"]),
                clock=int(payload["clock"]),
                strategy=payload.get("strategy", STRATEGY_REPLAY),
                native=dict(payload.get("native") or {}),
                machine=payload.get("machine"),
            )
        except SnapshotError:
            raise
        except (KeyError, TypeError, ValueError) as error:
            raise SnapshotError(f"malformed snapshot body: {error}")
        recorded_key = payload.get("spec_key")
        if recorded_key is not None and recorded_key != spec.key():
            raise SnapshotError(
                "snapshot spec_key does not match its own spec; the spec "
                "serialization has drifted since the snapshot was written"
            )
        return snapshot

    def describe(self) -> Dict[str, Any]:
        """Human-oriented summary for ``repro snapshot inspect``."""
        engine = self.native.get("engine") or {}
        return {
            "spec": self.spec.label(),
            "spec_key": self.spec.key(),
            "strategy": self.strategy,
            "events_processed": self.events_processed,
            "clock": self.clock,
            "pending_events": engine.get("pending_events"),
            "finished_threads": self.native.get("finished_threads"),
            "rng_streams": len(self.native.get("rng") or {}),
        }


# ------------------------------------------------------------------ documents
def snapshot_document(snapshot: Snapshot) -> Dict[str, Any]:
    """Wrap a snapshot in the versioned, hashed on-disk envelope."""
    body = snapshot.to_dict()
    return {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "sha256": body_hash(body),
        "snapshot": body,
    }


def parse_document(payload: Any, source: str = "snapshot") -> Snapshot:
    """Validate an envelope (format, version, integrity hash) into a Snapshot."""
    if not isinstance(payload, dict):
        raise SnapshotError(f"{source} is not a snapshot document")
    if payload.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"{source} is not a {SNAPSHOT_FORMAT} document "
            f"(format={payload.get('format')!r})"
        )
    version = payload.get("version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"{source} has unsupported snapshot version {version!r} "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )
    body = payload.get("snapshot")
    if not isinstance(body, dict):
        raise SnapshotError(f"{source} has no snapshot body")
    recorded = payload.get("sha256")
    actual = body_hash(body)
    if recorded != actual:
        raise SnapshotError(
            f"{source} failed its integrity check "
            f"(recorded sha256 {str(recorded)[:12]}..., actual {actual[:12]}...)"
        )
    return Snapshot.from_dict(body)


# ---------------------------------------------------------------------- files
def save_snapshot(snapshot: Snapshot, path: Union[str, Path]) -> Path:
    """Atomically write a snapshot document (temp file + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    data = json.dumps(snapshot_document(snapshot), indent=2, sort_keys=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def load_snapshot(path: Union[str, Path]) -> Snapshot:
    """Read and validate a snapshot file; raises :class:`SnapshotError`."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise SnapshotError(f"cannot read snapshot {path}: {error}")
    try:
        payload = json.loads(text)
    except ValueError as error:
        raise SnapshotError(f"snapshot {path} is not valid JSON: {error}")
    return parse_document(payload, source=f"snapshot {path}")


def try_load_snapshot(
    path: Union[str, Path]
) -> Tuple[Optional[Snapshot], Optional[str]]:
    """Load a checkpoint leniently, mirroring ResultCache eviction semantics.

    Returns ``(snapshot, None)`` on success, ``(None, None)`` when the file
    simply does not exist, and ``(None, reason)`` when it exists but is
    corrupt, stale-versioned, or otherwise unusable — the caller should warn
    with the reason, discard the file, and fall back to from-scratch
    execution.
    """
    path = Path(path)
    if not path.exists():
        return None, None
    try:
        return load_snapshot(path), None
    except SnapshotError as error:
        return None, str(error)


def checkpoint_path(directory: Union[str, Path], spec: RunSpec) -> Path:
    """Canonical checkpoint location for a spec: ``<dir>/<spec key>.ckpt.json``."""
    return Path(directory) / f"{spec.key()}.ckpt.json"
