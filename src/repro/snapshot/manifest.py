"""Run manifests: the on-disk record behind ``repro run --resume``.

Every manifest-tracked sweep owns a directory under the runs root
(``.wisync-runs/`` by default, overridable with ``--runs-dir`` or the
``REPRO_RUNS_DIR`` environment variable)::

    .wisync-runs/<run-id>/
        manifest.json      # sweep-shaping CLI args, status, per-spec progress
        checkpoints/       # mid-spec snapshots (<spec key>.ckpt.json)
        results/           # per-spec results; doubles as the ResultCache dir
        journal.jsonl      # broker write-ahead journal (--bind --journal runs)

The manifest records the arguments that shaped the grid, so ``repro run
--resume <run-id>`` can rebuild the *same* sweep without the user repeating
them, and the per-spec completion map plus the results/ cache let the
resumed run skip every finished grid point; ``checkpoints/`` then fast-
forwards the spec that was mid-flight when the run died.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import SnapshotError
from repro.runner.spec import RunSpec

MANIFEST_FORMAT = "wisync-run-manifest"
MANIFEST_VERSION = 1
MANIFEST_NAME = "manifest.json"

#: Default runs root, relative to the working directory.
DEFAULT_RUNS_DIR = ".wisync-runs"
#: Environment override for the runs root (e.g. a scratch filesystem).
RUNS_DIR_ENV = "REPRO_RUNS_DIR"

#: Lifecycle states recorded in the manifest.
STATUS_RUNNING = "running"
STATUS_COMPLETED = "completed"
STATUS_FAILED = "failed"


def runs_root(runs_dir: Optional[Union[str, Path]] = None) -> Path:
    """Resolve the runs root: explicit argument > environment > default."""
    if runs_dir is not None:
        return Path(runs_dir)
    return Path(os.environ.get(RUNS_DIR_ENV) or DEFAULT_RUNS_DIR)


def new_run_id() -> str:
    """A sortable, collision-resistant run id (timestamp + random suffix)."""
    # Host-side entropy for run-id uniqueness, never simulation state;
    # snapshot/ is outside the sim-core packages, so DET001's path scope
    # exempts it.
    stamp = time.strftime("%Y%m%d-%H%M%S")
    return f"{stamp}-{os.urandom(3).hex()}"


def available_runs(runs_dir: Optional[Union[str, Path]] = None) -> List[str]:
    """Run ids with a manifest under the runs root, oldest first."""
    root = runs_root(runs_dir)
    if not root.is_dir():
        return []
    return sorted(
        entry.name for entry in root.iterdir() if (entry / MANIFEST_NAME).is_file()
    )


class RunManifest:
    """One sweep's on-disk run record; all mutations are written through."""

    def __init__(self, root: Path, payload: Dict[str, Any]) -> None:
        self.root = Path(root)
        self.payload = payload

    # --------------------------------------------------------- construction
    @classmethod
    def create(
        cls,
        experiment: str,
        args: Dict[str, Any],
        runs_dir: Optional[Union[str, Path]] = None,
        run_id: Optional[str] = None,
        cache_dir: Optional[str] = None,
    ) -> "RunManifest":
        """Start a new tracked run; the run directory must not already exist."""
        root = runs_root(runs_dir) / (run_id or new_run_id())
        if (root / MANIFEST_NAME).exists():
            raise SnapshotError(
                f"run {root.name!r} already exists under {root.parent}; "
                f"use 'repro run --resume {root.name}' to continue it"
            )
        root.mkdir(parents=True, exist_ok=True)
        (root / "checkpoints").mkdir(exist_ok=True)
        (root / "results").mkdir(exist_ok=True)
        payload = {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "run_id": root.name,
            "experiment": experiment,
            "args": dict(args),
            "cache_dir": cache_dir,
            "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "status": STATUS_RUNNING,
            "completed": {},
        }
        manifest = cls(root, payload)
        manifest._save()
        return manifest

    @classmethod
    def load(
        cls, run_id: str, runs_dir: Optional[Union[str, Path]] = None
    ) -> "RunManifest":
        """Open an existing run's manifest; raises :class:`SnapshotError`."""
        root = runs_root(runs_dir) / run_id
        path = root / MANIFEST_NAME
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except OSError:
            known = available_runs(runs_dir)
            hint = f"; known runs: {', '.join(known[-5:])}" if known else ""
            raise SnapshotError(f"no run manifest at {path}{hint}")
        except ValueError as error:
            raise SnapshotError(f"run manifest {path} is not valid JSON: {error}")
        if payload.get("format") != MANIFEST_FORMAT:
            raise SnapshotError(f"{path} is not a {MANIFEST_FORMAT} document")
        if payload.get("version") != MANIFEST_VERSION:
            raise SnapshotError(
                f"{path} has unsupported manifest version "
                f"{payload.get('version')!r} (this build reads {MANIFEST_VERSION})"
            )
        return cls(root, payload)

    # ------------------------------------------------------------ accessors
    @property
    def run_id(self) -> str:
        return self.payload["run_id"]

    @property
    def experiment(self) -> str:
        return self.payload["experiment"]

    @property
    def args(self) -> Dict[str, Any]:
        return dict(self.payload.get("args") or {})

    @property
    def status(self) -> str:
        return self.payload.get("status", STATUS_RUNNING)

    @property
    def completed(self) -> Dict[str, Any]:
        """Per-spec progress map: ``spec key -> {label, cached}``."""
        return self.payload.setdefault("completed", {})

    @property
    def path(self) -> Path:
        return self.root / MANIFEST_NAME

    @property
    def checkpoint_dir(self) -> Path:
        path = self.root / "checkpoints"
        path.mkdir(parents=True, exist_ok=True)
        return path

    @property
    def results_dir(self) -> Path:
        path = self.root / "results"
        path.mkdir(parents=True, exist_ok=True)
        return path

    @property
    def journal_dir(self) -> Path:
        """Where a journaled broker (``repro run --bind --journal``) logs.

        The run directory itself: the journal is one ``journal.jsonl`` file
        (see :data:`repro.runner.journal.JOURNAL_NAME`) next to
        ``manifest.json``, so restarting the sweep host with ``--resume
        --journal`` finds the previous broker's task-state log exactly where
        the manifest lives.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        return self.root

    def cache_dir(self) -> str:
        """The result-cache directory this run records into.

        The ``--cache`` the user originally passed, if any; otherwise the
        manifest's own ``results/`` directory, so a resumed run can skip
        completed grid points even when the user never asked for a cache.
        """
        return self.payload.get("cache_dir") or str(self.results_dir)

    # ------------------------------------------------------------- mutation
    def record_result(self, spec: RunSpec, cached: bool) -> None:
        """Mark one grid point finished (written through immediately)."""
        self.completed[spec.key()] = {"label": spec.label(), "cached": cached}
        self._save()

    def mark_status(self, status: str) -> None:
        self.payload["status"] = status
        self._save()

    def _save(self) -> None:
        data = json.dumps(self.payload, indent=2, sort_keys=True)
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.root), prefix=MANIFEST_NAME, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(data)
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
