"""Native machine-state codec: O(1) checkpoint restore without replay.

``capture_machine`` walks a live :class:`~repro.machine.manycore.Manycore`
and produces a JSON-canonical payload describing every piece of runtime
state a resumed simulation needs: thread frame stacks, the event queue,
in-flight wireless transfers, pending BM operations, cache/directory
contents, and all counters.  ``restore_machine`` applies such a payload to
a *freshly built* machine for the same spec (same config, same workload,
``begin()`` already called) and leaves it cycle-exact at the captured
point — resuming costs O(state), independent of how many events the
original run had processed.

Design rules the codec lives by:

* **JSON-canonical payloads only.**  Every value the codec emits survives a
  ``json.dumps``/``loads`` round trip unchanged: dict keys are strings,
  sequences are lists, and int-keyed maps become lists of ``[key, value]``
  pairs.  This is what lets ``_verify_native`` compare an in-memory capture
  against a checkpoint loaded from disk bit for bit.
* **Insertion order is state.**  Dicts are serialized as pair lists in
  insertion order and restored in that order, because several consumers
  (TLB reverse translation, RMW failure notification, cache LRU) iterate
  them.  Sets that are only membership-tested are stored sorted.
* **No opaque callables.**  Every callback that can be live at a
  checkpoint is either a describable record (:class:`BmOpCallback`,
  :class:`ThreadResume`, ...) or a bound method of a singleton subsystem.
  Anything else raises :class:`SnapshotError`, which the execution layer
  turns into a transparent fall back to the replay strategy.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict, deque
from typing import Any, Dict, List, Optional

from repro.core.bm_controller import BmController, BmOpCallback, PendingBmOp, RmwResult
from repro.core.broadcast_memory import BmEntry
from repro.core.fabric import BroadcastFabric, _PendingRmw
from repro.core.fabric import _Waiter as _FabricWaiter
from repro.core.tone_controller import ActiveBEntry, AllocBEntry, ToneController, _ActivationSent
from repro.cpu.frames import Frame
from repro.cpu.thread import SimThread, ThreadResume, ThreadResumeNone, ThreadState
from repro.errors import SnapshotError
from repro.isa.predicates import Predicate, describe_predicate, predicate_from_payload
from repro.mem.directory import DirectoryEntry, LineState
from repro.mem.hierarchy import MemorySystem
from repro.mem.hierarchy import _Waiter as _MemWaiter
from repro.sim.events import Event
from repro.sim.stats import StatsRegistry
from repro.wireless.backoff import BroadcastAwareBackoff, ExponentialBackoff, FixedBackoff
from repro.wireless.channel import DataChannel, TransmissionHandle, WirelessMessage, _Attempt
from repro.wireless.tone import ToneChannel, _ActiveBarrier
from repro.wireless.transceiver import SendTicket, Transceiver, _PendingSend, _SendComplete


# --------------------------------------------------------------------- values
def _encode_value(value: Any, allow_refs: bool = True) -> Any:
    """Encode one runtime value (event arg, thread result, frame local).

    ``allow_refs`` permits by-id references to simulation objects (threads,
    channel attempts); frame locals must be plain data and encode with
    ``allow_refs=False``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, RmwResult):
        return {
            "__rmw__": [
                value.old_value,
                bool(value.success),
                bool(value.afb),
                value.completion_cycle,
            ]
        }
    if isinstance(value, Predicate):
        return {"__pred__": value.describe()}
    if isinstance(value, tuple):
        return {"__tuple__": [_encode_value(v, allow_refs) for v in value]}
    if isinstance(value, list):
        return {"__list__": [_encode_value(v, allow_refs) for v in value]}
    if allow_refs and isinstance(value, SimThread):
        return {"__thread__": value.thread_id}
    if allow_refs and isinstance(value, _Attempt):
        return {"__attempt__": value.attempt_id}
    raise SnapshotError(f"value {value!r} cannot be captured in a native snapshot")


def _decode_value(payload: Any, ctx: Optional["_RestoreCtx"]) -> Any:
    if payload is None or isinstance(payload, (bool, int, float, str)):
        return payload
    if isinstance(payload, dict):
        if "__rmw__" in payload:
            old, success, afb, cycle = payload["__rmw__"]
            return RmwResult(int(old), bool(success), bool(afb), int(cycle))
        if "__pred__" in payload:
            return predicate_from_payload(payload["__pred__"])
        if "__tuple__" in payload:
            return tuple(_decode_value(v, ctx) for v in payload["__tuple__"])
        if "__list__" in payload:
            return [_decode_value(v, ctx) for v in payload["__list__"]]
        if "__thread__" in payload and ctx is not None:
            return ctx.machine.threads[int(payload["__thread__"])]
        if "__attempt__" in payload and ctx is not None:
            return ctx.attempts[int(payload["__attempt__"])]
    raise SnapshotError(f"malformed native value payload: {payload!r}")


# ------------------------------------------------------------------ callbacks
def _describe_callback(cb: Any, machine) -> Dict[str, Any]:
    """Describe a live callback as a plain record, or raise SnapshotError."""
    if isinstance(cb, ThreadResumeNone):
        return {"k": "resume_none", "t": cb.thread.thread_id}
    if isinstance(cb, ThreadResume):
        return {"k": "resume", "t": cb.thread.thread_id}
    if isinstance(cb, BmOpCallback):
        return {
            "k": "bm_op",
            "n": cb.controller.node_id,
            "op": cb.op_id,
            "m": cb.method,
        }
    if isinstance(cb, _ActivationSent):
        return {"k": "activation", "n": cb.controller.node_id, "addr": cb.bm_addr}
    if isinstance(cb, _SendComplete):
        return {
            "k": "send_complete",
            "n": cb.transceiver.node_id,
            "sid": cb.pending.send_id,
        }
    bound_self = getattr(cb, "__self__", None)
    name = getattr(cb, "__name__", "")
    if bound_self is machine:
        if name == "_advance":
            return {"k": "advance"}
        if name == "_start_thread":
            return {"k": "start_thread"}
    fabric = machine.fabric
    if fabric is not None:
        if bound_self is fabric.data_channel:
            if name == "_arbitrate":
                return {"k": "chan_arbitrate"}
            if name == "_complete":
                return {"k": "chan_complete"}
        if fabric.tone_channel is not None and bound_self is fabric.tone_channel:
            if name == "_complete":
                return {"k": "tone_complete"}
    raise SnapshotError(f"callback {cb!r} is not describable for native capture")


def _decode_callback(desc: Dict[str, Any], ctx: "_RestoreCtx") -> Any:
    machine = ctx.machine
    kind = desc.get("k")
    if kind == "resume":
        return machine.threads[int(desc["t"])].resume
    if kind == "resume_none":
        return machine.threads[int(desc["t"])].resume_none
    if kind == "advance":
        return machine._advance
    if kind == "start_thread":
        return machine._start_thread
    if kind == "bm_op":
        controller = machine.fabric.nodes[int(desc["n"])].bm_controller
        return BmOpCallback(controller, int(desc["op"]), desc["m"])
    if kind == "activation":
        controller = machine.fabric.nodes[int(desc["n"])].tone_controller
        return _ActivationSent(controller, int(desc["addr"]))
    if kind == "send_complete":
        pending = ctx.pendings[(int(desc["n"]), int(desc["sid"]))]
        transceiver = machine.fabric.nodes[int(desc["n"])].transceiver
        return _SendComplete(transceiver, pending)
    if kind == "chan_arbitrate":
        return machine.fabric.data_channel._arbitrate
    if kind == "chan_complete":
        return machine.fabric.data_channel._complete
    if kind == "tone_complete":
        return machine.fabric.tone_channel._complete
    raise SnapshotError(f"unknown callback descriptor {desc!r}")


class _RestoreCtx:
    """By-id registries built up while a machine payload is being applied."""

    def __init__(self, machine) -> None:
        self.machine = machine
        #: attempt_id -> restored channel ``_Attempt``
        self.attempts: Dict[int, _Attempt] = {}
        #: (node_id, send_id) -> restored transceiver ``_PendingSend``
        self.pendings: Dict[Any, _PendingSend] = {}


# -------------------------------------------------------------------- threads
def _capture_thread(thread: SimThread) -> Dict[str, Any]:
    if thread.generator is not None and thread.state is not ThreadState.FINISHED:
        raise SnapshotError(
            f"thread {thread.thread_id} runs on a live generator frame; "
            "only frame-based workloads capture natively"
        )
    frames_payload: Optional[List[Dict[str, Any]]] = None
    if thread.frames is not None:
        frames_payload = []
        for frame in thread.frames:
            locals_payload: Dict[str, Any] = {}
            for var, value in frame.locals.items():
                try:
                    locals_payload[var] = _encode_value(value, allow_refs=False)
                except SnapshotError:
                    raise SnapshotError(
                        f"thread {thread.thread_id} frame "
                        f"{frame.routine}@{frame.label}: local {var!r} holds "
                        f"{value!r}, which is not plain data"
                    ) from None
            frames_payload.append(
                {"routine": frame.routine, "label": frame.label, "locals": locals_payload}
            )
    return {
        "state": thread.state.value,
        "start": thread.start_cycle,
        "finish": thread.finish_cycle,
        "ops": thread.operations_issued,
        "result": _encode_value(thread.result, allow_refs=False),
        "frames": frames_payload,
    }


def _restore_thread(thread: SimThread, payload: Dict[str, Any]) -> None:
    thread.state = ThreadState(payload["state"])
    thread.start_cycle = payload["start"]
    thread.finish_cycle = payload["finish"]
    thread.operations_issued = int(payload["ops"])
    thread.result = _decode_value(payload["result"], None)
    frames_payload = payload["frames"]
    if frames_payload is not None:
        thread.frames = [
            Frame(
                f["routine"],
                f["label"],
                {var: _decode_value(v, None) for var, v in f["locals"].items()},
            )
            for f in frames_payload
        ]
        thread.send = thread._frame_send


# ------------------------------------------------------------------ scheduler
def _capture_scheduler(scheduler) -> Dict[str, Any]:
    return {
        "placements": [
            [
                tid,
                {
                    "core": p.core_id,
                    "pid": p.pid,
                    "tb": sorted(p.tone_barriers),
                    "pre": bool(p.preempted),
                },
            ]
            for tid, p in scheduler._placements.items()
        ],
        "load": [[core, n] for core, n in scheduler._core_load.items()],
        "migrations": scheduler.migrations,
        "preemptions": scheduler.preemptions,
    }


def _restore_scheduler(scheduler, payload: Dict[str, Any]) -> None:
    for tid, entry in payload["placements"]:
        placement = scheduler._placements.get(int(tid))
        if placement is None:
            raise SnapshotError(f"snapshot names unknown thread placement {tid}")
        placement.core_id = int(entry["core"])
        placement.pid = int(entry["pid"])
        placement.tone_barriers = set(int(a) for a in entry["tb"])
        placement.preempted = bool(entry["pre"])
    scheduler._core_load = {int(c): int(n) for c, n in payload["load"]}
    scheduler.migrations = int(payload["migrations"])
    scheduler.preemptions = int(payload["preemptions"])


# ----------------------------------------------------------------------- sync
def sync_fingerprint(obj) -> Dict[str, Any]:
    """JSON-canonical digest of a sync object's mutable state.

    Shared with ``SpecExecution._native_state``, where it makes sync-object
    drift visible to the post-restore verification pass.
    """
    payload: Dict[str, Any] = {"type": type(obj).__name__}
    sense = getattr(obj, "_sense", None)
    if sense is not None:
        payload["sense"] = [[tid, s] for tid, s in sorted(sense.items())]
    qnodes = getattr(obj, "_qnodes", None)
    if qnodes is not None:
        payload["qnodes"] = [
            [tid, [locked, nxt]] for tid, (locked, nxt) in sorted(qnodes.items())
        ]
    return payload


def _restore_sync(obj, payload: Dict[str, Any]) -> None:
    if payload["type"] != type(obj).__name__:
        raise SnapshotError(
            f"sync object type mismatch: snapshot has {payload['type']}, "
            f"machine has {type(obj).__name__}"
        )
    if "sense" in payload:
        obj._sense = {int(tid): int(s) for tid, s in payload["sense"]}
    if "qnodes" in payload:
        obj._qnodes = {
            int(tid): (int(locked), int(nxt)) for tid, (locked, nxt) in payload["qnodes"]
        }


# --------------------------------------------------------------------- memory
def _capture_memory(memory: MemorySystem, machine) -> Dict[str, Any]:
    return {
        "values": [[word, v] for word, v in memory._values.items()],
        "l2": sorted(memory._l2_resident),
        "line_busy": [[line, t] for line, t in memory._line_busy_until.items()],
        "waiters": [
            [
                word,
                [
                    {
                        "core": w.core,
                        "pred": describe_predicate(w.predicate),
                        "cb": _describe_callback(w.callback, machine),
                    }
                    for w in waiters
                ],
            ]
            for word, waiters in memory._waiters.items()
        ],
        "dir": [
            [line, [entry.state.value, entry.owner, sorted(entry.sharers)]]
            for line, entry in memory.directory._entries.items()
        ],
        "l1": [
            {
                "sets": [[index, list(lines)] for index, lines in cache._sets.items()],
                "hits": cache.hits,
                "misses": cache.misses,
                "evictions": cache.evictions,
            }
            for cache in memory._l1
        ],
        "dram": [[c, t] for c, t in memory.dram._controller_free.items()],
    }


def _restore_memory(memory: MemorySystem, payload: Dict[str, Any], ctx: "_RestoreCtx") -> None:
    memory._values = {int(w): int(v) for w, v in payload["values"]}
    memory._l2_resident = set(int(line) for line in payload["l2"])
    memory._line_busy_until = {int(line): int(t) for line, t in payload["line_busy"]}
    memory._waiters = {
        int(word): [
            _MemWaiter(
                core=int(w["core"]),
                predicate=predicate_from_payload(w["pred"]),
                callback=_decode_callback(w["cb"], ctx),
            )
            for w in waiters
        ]
        for word, waiters in payload["waiters"]
    }
    memory.directory._entries = {
        int(line): DirectoryEntry(
            state=LineState(state), owner=owner, sharers=set(int(s) for s in sharers)
        )
        for line, (state, owner, sharers) in payload["dir"]
    }
    for cache, cache_payload in zip(memory._l1, payload["l1"]):
        cache._sets = {
            int(index): OrderedDict((int(line), True) for line in lines)
            for index, lines in cache_payload["sets"]
        }
        cache.hits = int(cache_payload["hits"])
        cache.misses = int(cache_payload["misses"])
        cache.evictions = int(cache_payload["evictions"])
    memory.dram._controller_free = {int(c): int(t) for c, t in payload["dram"]}


# --------------------------------------------------------------------- fabric
def _capture_backoff(backoff) -> Dict[str, Any]:
    if isinstance(backoff, ExponentialBackoff):
        return {
            "kind": "exponential",
            "exponent": backoff.exponent,
            "collisions": backoff.collisions,
            "successes": backoff.successes,
        }
    if isinstance(backoff, BroadcastAwareBackoff):
        return {
            "kind": "broadcast_aware",
            "estimate": backoff.estimate,
            "collisions": backoff.collisions,
            "successes": backoff.successes,
        }
    if isinstance(backoff, FixedBackoff):
        return {
            "kind": "fixed",
            "collisions": backoff.collisions,
            "successes": backoff.successes,
        }
    raise SnapshotError(f"unknown backoff policy {type(backoff).__name__}")


def _restore_backoff(backoff, payload: Dict[str, Any]) -> None:
    kinds = {
        ExponentialBackoff: "exponential",
        BroadcastAwareBackoff: "broadcast_aware",
        FixedBackoff: "fixed",
    }
    expected = kinds.get(type(backoff))
    if expected != payload["kind"]:
        raise SnapshotError(
            f"backoff kind mismatch: snapshot has {payload['kind']!r}, "
            f"machine has {expected!r}"
        )
    if isinstance(backoff, ExponentialBackoff):
        backoff.exponent = int(payload["exponent"])
    elif isinstance(backoff, BroadcastAwareBackoff):
        backoff.estimate = float(payload["estimate"])
    backoff.collisions = int(payload["collisions"])
    backoff.successes = int(payload["successes"])


def _encode_message(message: WirelessMessage) -> List[Any]:
    return [
        message.sender,
        message.bm_addr,
        message.value,
        bool(message.bulk),
        bool(message.tone_bit),
        list(message.bulk_values),
    ]


def _decode_message(payload: List[Any]) -> WirelessMessage:
    sender, bm_addr, value, bulk, tone_bit, bulk_values = payload
    return WirelessMessage(
        sender=int(sender),
        bm_addr=int(bm_addr),
        value=int(value),
        bulk=bool(bulk),
        tone_bit=bool(tone_bit),
        bulk_values=tuple(int(v) for v in bulk_values),
    )


def _capture_pending_send(pending: _PendingSend, machine) -> Dict[str, Any]:
    attempt_id: Optional[int] = None
    if pending.handle is not None and not pending.done:
        attempt_id = pending.handle._attempt.attempt_id
    return {
        "sid": pending.send_id,
        "msg": _encode_message(pending.message),
        "cb": _describe_callback(pending.on_complete, machine),
        "attempt": attempt_id,
    }


def _capture_attempt(attempt: _Attempt) -> Dict[str, Any]:
    on_complete = attempt.on_complete
    if not isinstance(on_complete, _SendComplete):
        raise SnapshotError(
            f"channel attempt {attempt.attempt_id} completion is not a "
            "transceiver send (native capture requires _SendComplete hooks)"
        )
    transceiver = on_complete.transceiver
    on_collision_self = getattr(attempt.on_collision, "__self__", None)
    if on_collision_self is not transceiver or getattr(
        attempt.on_collision, "__name__", ""
    ) != "_on_collision":
        raise SnapshotError(
            f"channel attempt {attempt.attempt_id} collision hook is not the "
            "sending transceiver's MAC"
        )
    return {
        "id": attempt.attempt_id,
        "n": transceiver.node_id,
        "sid": on_complete.pending.send_id,
        "msg": _encode_message(attempt.message),
        "enq": attempt.enqueued_at,
        "canc": bool(attempt.cancelled),
        "started": bool(attempt.started),
    }


def _live_attempts(channel: DataChannel, sim) -> Dict[int, _Attempt]:
    """Collect every channel attempt a restored run could still touch."""
    attempts: Dict[int, _Attempt] = {}
    for cycle_attempts in channel._attempts_by_cycle.values():
        for attempt in cycle_attempts:
            attempts[attempt.attempt_id] = attempt
    for _time, _priority, _seq, event in sim._queue:
        if event.cancelled:
            continue
        if getattr(event.callback, "__self__", None) is channel and getattr(
            event.callback, "__name__", ""
        ) == "_complete":
            attempts[event.args[0].attempt_id] = event.args[0]
    return attempts


def _capture_pending_op(op: PendingBmOp, machine) -> Dict[str, Any]:
    ticket_sid: Optional[int] = None
    if op.ticket is not None:
        ticket_sid = op.ticket._pending.send_id
    return {
        "id": op.op_id,
        "kind": op.kind,
        "addr": op.addr,
        "value": op.value,
        "values": list(op.values),
        "pid": op.pid,
        "old": op.old,
        "new": op.new,
        "settled": bool(op.settled),
        "token": op.token,
        "ticket": ticket_sid,
        "on_done": _describe_callback(op.on_done, machine),
    }


def _capture_transceiver(transceiver: Transceiver, machine) -> Dict[str, Any]:
    return {
        "queue": [_capture_pending_send(p, machine) for p in transceiver._queue],
        "in_flight": (
            None
            if transceiver._in_flight is None
            else _capture_pending_send(transceiver._in_flight, machine)
        ),
        "next_send_id": transceiver._next_send_id,
        "sent": transceiver.sent_messages,
        "collisions": transceiver.collisions_seen,
        "backoff": _capture_backoff(transceiver.backoff),
    }


def _capture_bm_controller(controller: BmController, machine) -> Dict[str, Any]:
    return {
        "wcb": bool(controller.wcb),
        "afb": bool(controller.afb),
        "stores": controller.stores_issued,
        "rmws": controller.rmws_issued,
        "failures": controller.rmw_failures,
        "next_op_id": controller._next_op_id,
        "ops": [_capture_pending_op(op, machine) for op in controller._pending_ops.values()],
    }


def _capture_tone_controller(controller: ToneController) -> Dict[str, Any]:
    pending_inits: List[int] = []
    for bm_addr, hook in controller._pending_inits.items():
        if hook is not None:
            raise SnapshotError(
                f"tone controller {controller.node_id} has an opaque "
                f"activation hook for barrier {bm_addr}"
            )
        pending_inits.append(bm_addr)
    return {
        "alloc_b": [[addr, bool(e.armed)] for addr, e in controller.alloc_b.items()],
        "active_b": [[addr, bool(e.arrived)] for addr, e in controller.active_b.items()],
        "early": sorted(controller._arrived_early),
        "pending_inits": pending_inits,
        "initiated": controller.barriers_initiated,
        "joined": controller.barriers_joined,
    }


def _restore_tone_controller(controller: ToneController, payload: Dict[str, Any]) -> None:
    controller.alloc_b = {
        int(addr): AllocBEntry(bm_addr=int(addr), armed=bool(armed))
        for addr, armed in payload["alloc_b"]
    }
    controller.active_b = {
        int(addr): ActiveBEntry(bm_addr=int(addr), arrived=bool(arrived))
        for addr, arrived in payload["active_b"]
    }
    controller._arrived_early = set(int(a) for a in payload["early"])
    controller._pending_inits = {int(a): None for a in payload["pending_inits"]}
    controller.barriers_initiated = int(payload["initiated"])
    controller.barriers_joined = int(payload["joined"])


def _capture_tone_channel(channel: ToneChannel) -> Dict[str, Any]:
    return {
        "active": [
            [
                addr,
                {
                    "at": channel._active[addr].activated_at,
                    "emitting": sorted(channel._active[addr].emitting),
                    "gen": channel._active[addr].generation,
                },
            ]
            for addr in channel._active_order
        ],
        "completed": channel.completed_barriers,
    }


def _restore_tone_channel(channel: ToneChannel, payload: Dict[str, Any]) -> None:
    channel._active = {}
    channel._active_order = []
    for addr, entry in payload["active"]:
        addr = int(addr)
        channel._active[addr] = _ActiveBarrier(
            bm_addr=addr,
            activated_at=int(entry["at"]),
            emitting=set(int(n) for n in entry["emitting"]),
            generation=int(entry["gen"]),
        )
        channel._active_order.append(addr)
    channel.completed_barriers = int(payload["completed"])


def _capture_fabric(fabric: BroadcastFabric, machine) -> Dict[str, Any]:
    channel = fabric.data_channel
    attempts = _live_attempts(channel, fabric.sim)
    return {
        "bm": [
            [
                addr,
                [entry.value, entry.pid, bool(entry.allocated), bool(entry.tone_capable)],
            ]
            for addr, entry in fabric.memory._entries.items()
        ],
        "allocator": {
            "owner": [[addr, pid] for addr, pid in fabric.allocator._owner.items()],
            "free_spill": fabric.allocator._free_spill_addr,
            "per_pid": [
                [pid, sorted(addrs)] for pid, addrs in sorted(fabric.allocator._per_pid.items())
            ],
            "spilled": fabric.allocator.spilled_allocations,
        },
        "tlb": {
            "mappings": [
                [[pid, vpage], [m.physical_page, bool(m.writable)]]
                for (pid, vpage), m in fabric.tlb._mappings.items()
            ],
            "hits": fabric.tlb.hits,
            "misses": fabric.tlb.misses,
        },
        "waiters": [
            [
                addr,
                [
                    {
                        "pred": describe_predicate(w.predicate),
                        "cb": _describe_callback(w.callback, machine),
                    }
                    for w in waiters
                ],
            ]
            for addr, waiters in fabric._waiters.items()
        ],
        "pending_rmw": [
            [
                token,
                {
                    "node": p.node,
                    "addr": p.addr,
                    "failed": bool(p.failed),
                    "on_fail": (
                        None if p.on_fail is None else _describe_callback(p.on_fail, machine)
                    ),
                },
            ]
            for token, p in fabric._pending_rmw.items()
        ],
        "pending_by_addr": [
            [addr, list(tokens)] for addr, tokens in fabric._pending_by_addr.items()
        ],
        "next_token": fabric._next_token,
        "total_writes": fabric.total_writes,
        "channel": {
            "busy_until": channel._busy_until,
            "next_attempt_id": channel._next_attempt_id,
            "attempts": [
                _capture_attempt(attempts[aid]) for aid in sorted(attempts)
            ],
            "by_cycle": [
                [cycle, [a.attempt_id for a in cycle_attempts]]
                for cycle, cycle_attempts in channel._attempts_by_cycle.items()
            ],
            "arb_pending": sorted(channel._arbitration_pending),
            "messages": channel.total_messages,
            "collisions": channel.total_collisions,
        },
        "tone": (
            None if fabric.tone_channel is None else _capture_tone_channel(fabric.tone_channel)
        ),
        "nodes": [
            {
                "transceiver": _capture_transceiver(node.transceiver, machine),
                "bm_controller": _capture_bm_controller(node.bm_controller, machine),
                "tone_controller": _capture_tone_controller(node.tone_controller),
            }
            for node in fabric.nodes
        ],
    }


def _restore_pending_send(
    payload: Dict[str, Any], node_id: int, ctx: "_RestoreCtx"
) -> _PendingSend:
    pending = _PendingSend(
        send_id=int(payload["sid"]),
        message=_decode_message(payload["msg"]),
        on_complete=_decode_callback(payload["cb"], ctx),
    )
    ctx.pendings[(node_id, pending.send_id)] = pending
    return pending


def _restore_fabric(fabric: BroadcastFabric, payload: Dict[str, Any], ctx: "_RestoreCtx") -> None:
    machine = ctx.machine
    fabric.memory._entries = {
        int(addr): BmEntry(
            value=int(value),
            pid=None if pid is None else int(pid),
            allocated=bool(allocated),
            tone_capable=bool(tone_capable),
        )
        for addr, (value, pid, allocated, tone_capable) in payload["bm"]
    }
    allocator_payload = payload["allocator"]
    fabric.allocator._owner = {
        int(addr): int(pid) for addr, pid in allocator_payload["owner"]
    }
    fabric.allocator._free_spill_addr = int(allocator_payload["free_spill"])
    fabric.allocator._per_pid = {
        int(pid): set(int(a) for a in addrs) for pid, addrs in allocator_payload["per_pid"]
    }
    fabric.allocator.spilled_allocations = int(allocator_payload["spilled"])
    tlb_payload = payload["tlb"]
    fabric.tlb._mappings = {}
    for (pid, vpage), (ppage, writable) in tlb_payload["mappings"]:
        fabric.tlb.map_page(int(pid), int(vpage), int(ppage), writable=bool(writable))
    fabric.tlb.hits = int(tlb_payload["hits"])
    fabric.tlb.misses = int(tlb_payload["misses"])
    fabric._next_token = int(payload["next_token"])
    fabric.total_writes = int(payload["total_writes"])

    # Per-node transceivers first: their pending sends are the targets that
    # channel attempts, BM-op tickets, and event callbacks re-link to.
    for node, node_payload in zip(fabric.nodes, payload["nodes"]):
        tx_payload = node_payload["transceiver"]
        transceiver = node.transceiver
        transceiver._queue = deque(
            _restore_pending_send(p, node.node_id, ctx) for p in tx_payload["queue"]
        )
        if tx_payload["in_flight"] is None:
            transceiver._in_flight = None
        else:
            transceiver._in_flight = _restore_pending_send(
                tx_payload["in_flight"], node.node_id, ctx
            )
        transceiver._next_send_id = int(tx_payload["next_send_id"])
        transceiver.sent_messages = int(tx_payload["sent"])
        transceiver.collisions_seen = int(tx_payload["collisions"])
        _restore_backoff(transceiver.backoff, tx_payload["backoff"])

    # Channel attempts next, re-linked to their pending sends.
    channel = fabric.data_channel
    channel_payload = payload["channel"]
    channel._busy_until = int(channel_payload["busy_until"])
    channel._next_attempt_id = int(channel_payload["next_attempt_id"])
    channel.total_messages = int(channel_payload["messages"])
    channel.total_collisions = int(channel_payload["collisions"])
    for attempt_payload in channel_payload["attempts"]:
        node_id = int(attempt_payload["n"])
        send_id = int(attempt_payload["sid"])
        pending = ctx.pendings.get((node_id, send_id))
        transceiver = fabric.nodes[node_id].transceiver
        if pending is not None:
            on_complete = _SendComplete(transceiver, pending)
        elif attempt_payload["canc"]:
            # The pending send was cancelled and dropped; the attempt only
            # survives until its arbitration cycle filters it out, so its
            # completion hook can never fire.
            on_complete = None
        else:
            raise SnapshotError(
                f"channel attempt {attempt_payload['id']} references unknown "
                f"pending send ({node_id}, {send_id})"
            )
        attempt = _Attempt(
            attempt_id=int(attempt_payload["id"]),
            message=_decode_message(attempt_payload["msg"]),
            on_complete=on_complete,
            on_collision=transceiver._on_collision,
            enqueued_at=int(attempt_payload["enq"]),
        )
        attempt.cancelled = bool(attempt_payload["canc"])
        attempt.started = bool(attempt_payload["started"])
        ctx.attempts[attempt.attempt_id] = attempt
    channel._attempts_by_cycle = {
        int(cycle): [ctx.attempts[int(aid)] for aid in attempt_ids]
        for cycle, attempt_ids in channel_payload["by_cycle"]
    }
    channel._arbitration_pending = set(int(c) for c in channel_payload["arb_pending"])
    for node, node_payload in zip(fabric.nodes, payload["nodes"]):
        tx_payload = node_payload["transceiver"]
        sends = list(tx_payload["queue"])
        if tx_payload["in_flight"] is not None:
            sends.append(tx_payload["in_flight"])
        for send_payload in sends:
            if send_payload["attempt"] is not None:
                pending = ctx.pendings[(node.node_id, int(send_payload["sid"]))]
                pending.handle = TransmissionHandle(ctx.attempts[int(send_payload["attempt"])])

    # BM controllers: pending ops re-link to transceiver sends via tickets.
    for node, node_payload in zip(fabric.nodes, payload["nodes"]):
        bm_payload = node_payload["bm_controller"]
        controller = node.bm_controller
        controller.wcb = bool(bm_payload["wcb"])
        controller.afb = bool(bm_payload["afb"])
        controller.stores_issued = int(bm_payload["stores"])
        controller.rmws_issued = int(bm_payload["rmws"])
        controller.rmw_failures = int(bm_payload["failures"])
        controller._next_op_id = int(bm_payload["next_op_id"])
        controller._pending_ops = {}
        for op_payload in bm_payload["ops"]:
            op = PendingBmOp(
                op_id=int(op_payload["id"]),
                kind=op_payload["kind"],
                addr=int(op_payload["addr"]),
                on_done=_decode_callback(op_payload["on_done"], ctx),
                pid=None if op_payload["pid"] is None else int(op_payload["pid"]),
                value=int(op_payload["value"]),
                values=tuple(int(v) for v in op_payload["values"]),
                old=int(op_payload["old"]),
                new=int(op_payload["new"]),
            )
            op.settled = bool(op_payload["settled"])
            op.token = None if op_payload["token"] is None else int(op_payload["token"])
            if op_payload["ticket"] is not None:
                pending = ctx.pendings.get((node.node_id, int(op_payload["ticket"])))
                if pending is not None:
                    op.ticket = SendTicket(node.transceiver, pending)
            controller._pending_ops[op.op_id] = op
        _restore_tone_controller(node.tone_controller, node_payload["tone_controller"])

    fabric._waiters = {
        int(addr): [
            _FabricWaiter(
                predicate=predicate_from_payload(w["pred"]),
                callback=_decode_callback(w["cb"], ctx),
            )
            for w in waiters
        ]
        for addr, waiters in payload["waiters"]
    }
    fabric._pending_rmw = {}
    for token, rmw_payload in payload["pending_rmw"]:
        pending_rmw = _PendingRmw(
            node=int(rmw_payload["node"]),
            addr=int(rmw_payload["addr"]),
            on_fail=(
                None
                if rmw_payload["on_fail"] is None
                else _decode_callback(rmw_payload["on_fail"], ctx)
            ),
        )
        pending_rmw.failed = bool(rmw_payload["failed"])
        fabric._pending_rmw[int(token)] = pending_rmw
    fabric._pending_by_addr = {
        int(addr): {int(token): None for token in tokens}
        for addr, tokens in payload["pending_by_addr"]
    }
    if payload["tone"] is not None:
        if fabric.tone_channel is None:
            raise SnapshotError("snapshot carries tone-channel state but machine has none")
        _restore_tone_channel(fabric.tone_channel, payload["tone"])
    _ = machine  # machine is reachable through ctx; kept for symmetry


# ---------------------------------------------------------------------- stats
def _restore_stats(stats: StatsRegistry, payload: Dict[str, Any]) -> None:
    """Apply a ``StatsRegistry.to_dict`` payload to live flyweight handles.

    Subsystems hold direct references to counter/histogram objects, so the
    restore must mutate the existing instances in place: zero everything,
    then apply the captured values.
    """
    for counter in stats.counters.values():
        counter.value = 0
    for histogram in stats.histograms.values():
        histogram.samples = []
        histogram._sorted = None
    for tracker in stats.utilizations.values():
        tracker.busy_cycles = 0
        tracker.busy_intervals = 0
    for name, value in payload.get("counters", {}).items():
        stats.counter(name).value = value
    for name, samples in payload.get("histograms", {}).items():
        histogram = stats.histogram(name)
        histogram.samples = list(samples)
        histogram._sorted = None
    for name, entry in payload.get("utilizations", {}).items():
        tracker = stats.utilization(name)
        tracker.busy_cycles = entry["busy_cycles"]
        tracker.busy_intervals = entry["busy_intervals"]


# --------------------------------------------------------------------- events
def _capture_events(machine) -> List[Dict[str, Any]]:
    entries = []
    for time, priority, seq, event in sorted(machine.sim._queue, key=lambda e: e[:3]):
        if event.cancelled:
            # Cancelled entries are dead weight the engine pops and skips;
            # dropping them here keeps ``pending_events`` identical because
            # the restored queue starts with ``_cancelled == 0``.
            continue
        entries.append(
            {
                "t": time,
                "p": priority,
                "s": seq,
                "cb": _describe_callback(event.callback, machine),
                "args": [_encode_value(arg) for arg in event.args],
            }
        )
    return entries


def _restore_events(machine, engine_payload: Dict[str, Any], events: List[Dict[str, Any]], ctx: "_RestoreCtx") -> None:
    sim = machine.sim
    sim.now = int(engine_payload["now"])
    sim._seq = int(engine_payload["seq"])
    sim.events_processed = int(engine_payload["events_processed"])
    sim._cancelled = 0
    sim._stop = False
    entries = []
    for event_payload in events:
        time = int(event_payload["t"])
        priority = int(event_payload["p"])
        seq = int(event_payload["s"])
        callback = _decode_callback(event_payload["cb"], ctx)
        args = tuple(_decode_value(arg, ctx) for arg in event_payload["args"])
        event = Event(time, priority, seq, callback, args, sim)
        entries.append((time, priority, seq, event))
    queue = sim._queue
    queue[:] = entries
    heapq.heapify(queue)


# ----------------------------------------------------------------- public API
def capture_machine(machine) -> Dict[str, Any]:
    """Serialize the complete runtime state of a live machine.

    Raises :class:`SnapshotError` if any live state is not natively
    capturable (generator-based threads, opaque callbacks, non-plain frame
    locals); callers fall back to the replay strategy in that case.
    """
    sim = machine.sim
    payload: Dict[str, Any] = {
        "machine": {
            "finished": machine._finished,
            "soft_bm_next": machine._soft_bm_next,
            "events_start": machine._events_start,
        },
        "programs": [program._next_shared for program in machine.programs],
        "threads": [_capture_thread(thread) for thread in machine.threads],
        "scheduler": _capture_scheduler(machine.scheduler),
        "cores": [
            {
                "busy": core.busy_cycles,
                "mem": core.memory_stall_cycles,
                "sync": core.sync_stall_cycles,
                "instr": core.instructions_retired,
                "thread": core.current_thread,
            }
            for core in machine.cores
        ],
        "sync": [sync_fingerprint(obj) for obj in machine.sync_objects],
        "memory": _capture_memory(machine.memory, machine),
        "mesh": {
            "inject": [[n, t] for n, t in machine.mesh._injection_free.items()],
            "eject": [[n, t] for n, t in machine.mesh._ejection_free.items()],
        },
        "fabric": (
            None if machine.fabric is None else _capture_fabric(machine.fabric, machine)
        ),
        "engine": {
            "now": sim.now,
            "seq": sim._seq,
            "events_processed": sim.events_processed,
        },
        "events": _capture_events(machine),
        "stats": machine.stats.to_dict(),
        "rng": machine.rng.tree_getstate(),
    }
    return payload


def restore_machine(machine, payload: Dict[str, Any]) -> None:
    """Apply a ``capture_machine`` payload to a freshly built machine.

    The machine must have been constructed for the same spec (config,
    workload, params) and have had ``begin()`` called; restore then
    overwrites every piece of runtime state, leaving it indistinguishable
    from the machine the capture was taken on.
    """
    ctx = _RestoreCtx(machine)
    machine_payload = payload["machine"]
    machine._finished = int(machine_payload["finished"])
    machine._soft_bm_next = int(machine_payload["soft_bm_next"])
    machine._events_start = int(machine_payload["events_start"])
    if len(payload["programs"]) != len(machine.programs):
        raise SnapshotError("snapshot program count does not match the machine")
    for program, next_shared in zip(machine.programs, payload["programs"]):
        program._next_shared = int(next_shared)
    if len(payload["threads"]) != len(machine.threads):
        raise SnapshotError("snapshot thread count does not match the machine")
    for thread, thread_payload in zip(machine.threads, payload["threads"]):
        _restore_thread(thread, thread_payload)
    _restore_scheduler(machine.scheduler, payload["scheduler"])
    for core, core_payload in zip(machine.cores, payload["cores"]):
        core.busy_cycles = int(core_payload["busy"])
        core.memory_stall_cycles = int(core_payload["mem"])
        core.sync_stall_cycles = int(core_payload["sync"])
        core.instructions_retired = int(core_payload["instr"])
        core.current_thread = core_payload["thread"]
    if len(payload["sync"]) != len(machine.sync_objects):
        raise SnapshotError("snapshot sync-object count does not match the machine")
    for obj, sync_payload in zip(machine.sync_objects, payload["sync"]):
        _restore_sync(obj, sync_payload)
    _restore_memory(machine.memory, payload["memory"], ctx)
    machine.mesh._injection_free = {int(n): int(t) for n, t in payload["mesh"]["inject"]}
    machine.mesh._ejection_free = {int(n): int(t) for n, t in payload["mesh"]["eject"]}
    if payload["fabric"] is not None:
        if machine.fabric is None:
            raise SnapshotError("snapshot carries fabric state but machine has none")
        _restore_fabric(machine.fabric, payload["fabric"], ctx)
    _restore_stats(machine.stats, payload["stats"])
    machine.rng.tree_setstate(payload["rng"])
    # The engine and its queue go last: every callback and argument they
    # reference (threads, pending sends, channel attempts) now exists.
    _restore_events(machine, payload["engine"], payload["events"], ctx)
