"""Checkpoint/restore for simulations and sweeps (simics-style).

Two cooperating strategies sit behind one :class:`Snapshot` API:

* **Native state capture** — everything enumerable about a running machine
  (engine clock / sequence counter / event count, the full
  :class:`~repro.sim.rng.DeterministicRng` derivation tree, the stats
  flyweights, per-thread progress) is serialized into a versioned,
  integrity-hashed JSON document.
* **Deterministic replay fast-forward** — the universal restore path for
  workloads whose live generator-based thread frames cannot be serialized:
  the snapshot records ``(spec, events_processed)`` and restore re-runs the
  spec to exactly that event count, which is exact because every source of
  randomness flows through seeded :class:`~repro.sim.rng.DeterministicRng`
  streams.  After the fast-forward the captured native state is compared
  bit-for-bit, so a snapshot written by drifted code can never silently
  produce a wrong continuation.

The package also provides :class:`RunManifest` — the on-disk record behind
``repro run --resume <run-id>`` grid-level resumability — the
checkpoint-file helpers used by ``execute_spec(checkpoint_every=...)``, the
distributed worker's checkpoint shipping, and the ``repro snapshot`` CLI,
plus :class:`CheckpointRing` (the bounded auto-snapshot buffer behind
``repro run --auto-snapshot`` and the ``repro debug`` time-travel
debugger in :mod:`repro.snapshot.debugger`).
"""

from repro.snapshot.execution import (
    DEFAULT_MAX_EVENTS,
    ExecutionPreempted,
    SpecExecution,
    execute_with_checkpoints,
    resume_to_completion,
    run_prefix,
    snapshot_after,
)
from repro.snapshot.format import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    STRATEGY_NATIVE,
    STRATEGY_REPLAY,
    Snapshot,
    SnapshotWarning,
    checkpoint_path,
    load_snapshot,
    parse_document,
    save_snapshot,
    snapshot_document,
    try_load_snapshot,
)
from repro.snapshot.ring import CheckpointRing, RingEntry, ring_path, ring_paths
from repro.snapshot.manifest import (
    DEFAULT_RUNS_DIR,
    RUNS_DIR_ENV,
    RunManifest,
    available_runs,
    new_run_id,
    runs_root,
)

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "STRATEGY_NATIVE",
    "STRATEGY_REPLAY",
    "Snapshot",
    "SnapshotWarning",
    "snapshot_document",
    "parse_document",
    "save_snapshot",
    "load_snapshot",
    "try_load_snapshot",
    "checkpoint_path",
    "DEFAULT_MAX_EVENTS",
    "SpecExecution",
    "ExecutionPreempted",
    "execute_with_checkpoints",
    "run_prefix",
    "snapshot_after",
    "resume_to_completion",
    "CheckpointRing",
    "RingEntry",
    "ring_path",
    "ring_paths",
    "RunManifest",
    "available_runs",
    "DEFAULT_RUNS_DIR",
    "RUNS_DIR_ENV",
    "new_run_id",
    "runs_root",
]
