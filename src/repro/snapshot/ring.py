"""Bounded rings of periodic checkpoints (the auto-snapshot buffer).

A :class:`CheckpointRing` keeps the most recent K snapshots of one running
spec, in memory, on disk, or both.  Two consumers share it:

* ``repro run --auto-snapshot K`` — each periodic checkpoint written by
  ``--checkpoint-every`` is *also* banked as a ring file in the run
  manifest's ``checkpoints/`` directory, pruned to the last K, so a
  finished (or crashed) run leaves a trail of restorable moments behind
  instead of a single overwritten cursor.
* ``repro debug`` — the time-travel debugger feeds an in-memory ring while
  stepping forward and restores from it to travel backward in O(1) via
  :data:`~repro.snapshot.format.STRATEGY_NATIVE`.

Ring files are ordinary snapshot documents named
``<spec key>.ring-<events, zero-padded>.ckpt.json`` — any of them feeds
``repro snapshot restore``/``inspect`` or ``repro debug --from`` directly.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union

from repro.errors import SnapshotError
from repro.runner.spec import RunSpec
from repro.snapshot.format import Snapshot, load_snapshot, save_snapshot

#: Zero-padding of the event counter in ring file names keeps lexicographic
#: and numeric order identical, so sorted() walks history oldest-first.
_EVENT_DIGITS = 12


def ring_path(directory: Union[str, Path], spec: RunSpec, events: int) -> Path:
    """Ring-file location for ``spec`` captured at ``events``."""
    return Path(directory) / (
        f"{spec.key()}.ring-{events:0{_EVENT_DIGITS}d}.ckpt.json"
    )


def ring_paths(directory: Union[str, Path], spec: RunSpec) -> List[Path]:
    """Every ring file for ``spec`` under ``directory``, oldest first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob(f"{spec.key()}.ring-*.ckpt.json"))


class RingEntry:
    """One banked moment: where it is in simulated time and where it lives."""

    __slots__ = ("events", "clock", "strategy", "snapshot", "path")

    def __init__(
        self,
        events: int,
        clock: int,
        strategy: str,
        snapshot: Optional[Snapshot],
        path: Optional[Path],
    ) -> None:
        self.events = events
        self.clock = clock
        self.strategy = strategy
        self.snapshot = snapshot
        self.path = path

    def load(self) -> Snapshot:
        """The entry's snapshot, from memory or (re-validated) from disk."""
        if self.snapshot is not None:
            return self.snapshot
        if self.path is None:  # unreachable: push() always sets one of the two
            raise SnapshotError("ring entry holds neither a snapshot nor a path")
        return load_snapshot(self.path)


class CheckpointRing:
    """The last ``capacity`` snapshots of one spec, oldest dropped first."""

    def __init__(
        self,
        capacity: int,
        directory: Optional[Union[str, Path]] = None,
        keep_in_memory: bool = True,
    ) -> None:
        if capacity < 1:
            raise SnapshotError(
                f"auto-snapshot ring capacity must be >= 1, got {capacity}"
            )
        if directory is None and not keep_in_memory:
            raise SnapshotError(
                "a ring with neither a directory nor in-memory retention "
                "would discard every snapshot it is given"
            )
        self.capacity = capacity
        self.directory = Path(directory) if directory is not None else None
        self.keep_in_memory = keep_in_memory
        self._entries: List[RingEntry] = []

    # ------------------------------------------------------------- mutation
    def push(self, snapshot: Snapshot) -> RingEntry:
        """Bank a snapshot; prunes stale futures and over-capacity history.

        Entries at or past the new snapshot's event count are superseded:
        after time-travelling backward and re-advancing, the re-captured
        moments replace the old ones (bit-identical by determinism, but one
        canonical entry per event count keeps the ring unambiguous).
        """
        path: Optional[Path] = None
        if self.directory is not None:
            path = ring_path(self.directory, snapshot.spec, snapshot.events_processed)
            save_snapshot(snapshot, path)
        entry = RingEntry(
            events=snapshot.events_processed,
            clock=snapshot.clock,
            strategy=snapshot.strategy,
            snapshot=snapshot if self.keep_in_memory else None,
            path=path,
        )
        superseded = [e for e in self._entries if e.events >= entry.events]
        self._entries = [e for e in self._entries if e.events < entry.events]
        self._entries.append(entry)
        overflow: List[RingEntry] = []
        if len(self._entries) > self.capacity:
            overflow = self._entries[: len(self._entries) - self.capacity]
            self._entries = self._entries[len(self._entries) - self.capacity:]
        for dropped in superseded + overflow:
            if dropped.path is not None and dropped.path != entry.path:
                dropped.path.unlink(missing_ok=True)
        return entry

    # -------------------------------------------------------------- queries
    def entries(self) -> List[RingEntry]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def newest_at_or_before(self, events: int) -> Optional[RingEntry]:
        """The ring's best launch point for travelling to ``events``."""
        best: Optional[RingEntry] = None
        for entry in self._entries:
            if entry.events <= events and (best is None or entry.events > best.events):
                best = entry
        return best
