"""Time-travel debugging: step a simulation backward as cheaply as forward.

:class:`TimeTravelDebugger` drives one :class:`~repro.snapshot.execution.
SpecExecution` forward in event steps, banking an auto-snapshot into a
:class:`~repro.snapshot.ring.CheckpointRing` at every interval boundary.
Travelling backward (``back``/``goto``) restores the newest banked snapshot
at or before the target and advances the remainder — for frame-ported
workloads the restore is :data:`~repro.snapshot.format.STRATEGY_NATIVE`,
i.e. O(machine state), so stepping 2 events back out of 2 million costs
about as much as stepping 2 events forward.  Generator workloads ride the
same interface through :data:`~repro.snapshot.format.STRATEGY_REPLAY`
restores (correct, but O(events) back to the ring entry).

Determinism makes revisiting exact: a restored-and-re-advanced machine is
bit-identical to the one originally observed (the restore itself is
verified against the snapshot's native sections), so the debugger's
timeline is stable no matter how many times it is traversed.

:class:`DebugSession` is the ``repro debug`` command interpreter built on
top; it is driven interactively from stdin or scripted via ``--exec``.
"""

from __future__ import annotations

import json
import shlex
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.errors import ReproError, SnapshotError
from repro.runner.spec import RunSpec
from repro.snapshot.execution import DEFAULT_MAX_EVENTS, SpecExecution
from repro.snapshot.format import Snapshot, save_snapshot
from repro.snapshot.ring import CheckpointRing

#: Auto-snapshot cadence when the user does not pick one: frequent enough
#: that ``back`` lands close to where you were, cheap enough to forget.
DEFAULT_INTERVAL = 5_000
#: Ring capacity: how far the reachable past stretches (the run's start is
#: pinned outside the ring, so event 0 is always reachable).
DEFAULT_RING = 16


class TimeTravelDebugger:
    """One spec's simulation with a navigable past."""

    def __init__(
        self,
        spec: Optional[RunSpec] = None,
        snapshot: Optional[Snapshot] = None,
        interval: int = DEFAULT_INTERVAL,
        capacity: int = DEFAULT_RING,
        max_events: int = DEFAULT_MAX_EVENTS,
    ) -> None:
        if (spec is None) == (snapshot is None):
            raise ReproError(
                "the debugger starts from exactly one of a spec or a snapshot"
            )
        if interval < 1:
            raise ReproError(f"--interval must be >= 1 events, got {interval}")
        self.interval = interval
        self.max_events = max_events
        self.ring = CheckpointRing(capacity)
        if snapshot is not None:
            self.execution = SpecExecution.from_snapshot(snapshot, max_events=max_events)
            self._genesis = snapshot
        else:
            self.execution = SpecExecution(spec, max_events=max_events)
            self._genesis = self.execution.capture()
        #: Strategy of the most recent backward/lateral restore (None while
        #: only ever having moved forward).
        self.last_restore: Optional[str] = None

    # -------------------------------------------------------------- position
    @property
    def spec(self) -> RunSpec:
        return self.execution.spec

    @property
    def events(self) -> int:
        return self.execution.events_processed

    @property
    def clock(self) -> int:
        return self.execution.clock

    def complete(self) -> bool:
        return self.execution.complete()

    # ------------------------------------------------------------- movement
    def step(self, events: Optional[int] = None) -> int:
        """Advance ``events`` (default: one interval); returns events fired."""
        if events is not None and events < 1:
            raise ReproError(f"step size must be >= 1 events, got {events}")
        return self._advance_to(self.events + (events or self.interval))

    def run(self) -> int:
        """Advance until the run completes (or its event budget drains)."""
        return self._advance_to(self.max_events)

    def goto(self, target: int) -> Dict[str, Any]:
        """Travel to exactly ``target`` events, in either direction.

        Launches from the best banked moment at or before the target — the
        current position if it qualifies, else a ring entry, else the
        pinned genesis — and advances the difference.  Returns a summary of
        the hop: where it launched from and which restore strategy paid for
        the backward part (``None`` for a pure forward advance).
        """
        if target < self._genesis.events_processed:
            raise ReproError(
                f"cannot travel to event {target}: this session starts at "
                f"event {self._genesis.events_processed}"
            )
        restored: Optional[str] = None
        launch = self.events
        best = self.ring.newest_at_or_before(target)
        candidate: Optional[Snapshot] = None
        if target < self.events or (best is not None and best.events > self.events):
            # Backward, or forward past a banked moment we can jump to.
            candidate = best.load() if best is not None else self._genesis
        if candidate is not None:
            self.execution = SpecExecution.from_snapshot(
                candidate, max_events=self.max_events
            )
            restored = self.execution.restore_strategy
            self.last_restore = restored
            launch = candidate.events_processed
        self._advance_to(target)
        return {
            "target": target,
            "events": self.events,
            "launched_from": launch,
            "restored": restored,
        }

    def back(self, checkpoints: int = 1) -> Dict[str, Any]:
        """Hop ``checkpoints`` banked moments into the past (min: genesis)."""
        if checkpoints < 1:
            raise ReproError(f"back must hop >= 1 checkpoints, got {checkpoints}")
        past = [e.events for e in self.ring.entries() if e.events < self.events]
        if len(past) >= checkpoints:
            target = past[-checkpoints]
        else:
            target = self._genesis.events_processed
        return self.goto(target)

    def _advance_to(self, target: int) -> int:
        """Advance to ``target`` events, banking a snapshot per interval."""
        fired_total = 0
        while self.events < target and not self.execution.complete():
            fired = self.execution.advance(min(self.interval, target - self.events))
            if fired == 0:
                break  # event budget exhausted; inspect() will say so
            fired_total += fired
            if not self.execution.complete():
                self.ring.push(self.execution.capture())
        return fired_total

    # ------------------------------------------------------------ inspection
    def inspect(self) -> Dict[str, Any]:
        """Where the simulation is and what past is reachable."""
        threads = [t.state.value for t in self.execution.machine.threads]
        states = {state: threads.count(state) for state in sorted(set(threads))}
        return {
            "spec": self.spec.label(),
            "events": self.events,
            "clock": self.clock,
            "complete": self.complete(),
            "threads": states,
            "interval": self.interval,
            "ring": [entry.events for entry in self.ring.entries()],
            "genesis": self._genesis.events_processed,
            "last_restore": self.last_restore,
        }

    def threads(self) -> List[Dict[str, Any]]:
        """Per-thread progress: state, frame stack (or generator), ops."""
        rows: List[Dict[str, Any]] = []
        for thread in self.execution.machine.threads:
            if thread.frames is not None:
                stack = [f"{frame.routine}@{frame.label}" for frame in thread.frames]
                body = " > ".join(stack) if stack else "(empty stack)"
            elif thread.generator is not None:
                body = "(generator)"
            else:
                body = "(finished)"
            rows.append(
                {
                    "thread": thread.thread_id,
                    "core": thread.core_id,
                    "state": thread.state.value,
                    "body": body,
                    "operations": thread.operations_issued,
                }
            )
        return rows

    def stats(self, prefix: str = "") -> Dict[str, Any]:
        """The machine's stats counters, optionally filtered by prefix."""
        counters = self.execution.machine.stats.to_dict().get("counters", {})
        return {
            name: value
            for name, value in sorted(counters.items())
            if name.startswith(prefix)
        }

    def save(self, path: str) -> Snapshot:
        """Write the current moment as an ordinary snapshot file."""
        snapshot = self.execution.capture()
        save_snapshot(snapshot, path)
        return snapshot

    def result(self) -> Dict[str, Any]:
        """Finish-line summary once the run is complete."""
        if not self.complete():
            raise ReproError(
                f"the run is still in flight at {self.events} events; "
                f"'continue' to the end first"
            )
        return self.execution.result().to_dict()


_HELP = """\
commands (unique prefixes work, e.g. 's 100', 'b', 'g 2000'):
  step [N]      advance N events (default: one auto-snapshot interval)
  continue      run to completion, auto-snapshotting along the way
  back [K]      hop K banked checkpoints into the past (O(1) for native)
  goto EVENTS   travel to an exact event count, forward or backward
  inspect       position, thread-state census, reachable past
  threads       per-thread state and frame stack
  stats [PFX]   stats counters, optionally filtered by prefix
  save PATH     write the current moment as a snapshot file
  result        final SimResult (once complete)
  help          this text
  quit          leave the debugger"""


class DebugSession:
    """The ``repro debug`` command interpreter over a TimeTravelDebugger."""

    def __init__(
        self,
        debugger: TimeTravelDebugger,
        emit: Callable[[str], None] = print,
    ) -> None:
        self.debugger = debugger
        self.emit = emit

    # ---------------------------------------------------------------- loop
    def run(self, commands: Iterable[str]) -> int:
        """Execute commands until exhausted or 'quit'; returns an exit code."""
        self.emit(
            f"debugging [{self.debugger.spec.label()}] at event "
            f"{self.debugger.events} (cycle {self.debugger.clock}); "
            f"'help' lists commands"
        )
        for line in commands:
            try:
                if not self.execute(line):
                    break
            except (ReproError, SnapshotError) as error:
                self.emit(f"error: {error}")
        return 0

    def execute(self, line: str) -> bool:
        """One command; returns False when the session should end."""
        words = shlex.split(line.strip())
        if not words:
            return True
        command, args = words[0].lower(), words[1:]
        handler = self._resolve(command)
        if handler is None:
            self.emit(f"unknown command {command!r}; 'help' lists commands")
            return True
        return handler(args)

    def _resolve(self, command: str) -> Optional[Callable[[List[str]], bool]]:
        table = {
            "step": self._cmd_step,
            "continue": self._cmd_continue,
            "back": self._cmd_back,
            "goto": self._cmd_goto,
            "inspect": self._cmd_inspect,
            "threads": self._cmd_threads,
            "stats": self._cmd_stats,
            "save": self._cmd_save,
            "result": self._cmd_result,
            "help": self._cmd_help,
            "quit": self._cmd_quit,
        }
        matches = sorted(name for name in table if name.startswith(command))
        if len(matches) == 1:
            return table[matches[0]]
        if command in table:  # exact name wins over a prefix collision
            return table[command]
        if matches:
            self.emit(f"ambiguous command {command!r}: {' or '.join(matches)}")
            return self._cmd_noop
        return None

    def _cmd_noop(self, args: List[str]) -> bool:
        return True

    # ------------------------------------------------------------- commands
    def _int(self, args: List[str], what: str) -> int:
        if len(args) != 1:
            raise ReproError(f"{what} takes exactly one number")
        try:
            return int(args[0])
        except ValueError:
            raise ReproError(f"{what} must be an integer, got {args[0]!r}")

    def _position(self) -> str:
        d = self.debugger
        tail = " (complete)" if d.complete() else ""
        return f"at event {d.events}, cycle {d.clock}{tail}"

    def _cmd_step(self, args: List[str]) -> bool:
        events = self._int(args, "step") if args else None
        fired = self.debugger.step(events)
        self.emit(f"stepped {fired} events; {self._position()}")
        return True

    def _cmd_continue(self, args: List[str]) -> bool:
        fired = self.debugger.run()
        self.emit(f"ran {fired} events; {self._position()}")
        return True

    def _cmd_back(self, args: List[str]) -> bool:
        hops = self._int(args, "back") if args else 1
        hop = self.debugger.back(hops)
        self.emit(self._describe_hop(hop))
        return True

    def _cmd_goto(self, args: List[str]) -> bool:
        hop = self.debugger.goto(self._int(args, "goto"))
        self.emit(self._describe_hop(hop))
        return True

    def _describe_hop(self, hop: Dict[str, Any]) -> str:
        if hop["restored"] is None:
            return f"advanced; {self._position()}"
        replayed = hop["events"] - hop["launched_from"]
        return (
            f"travelled via {hop['restored']} restore of checkpoint "
            f"@{hop['launched_from']} (+{replayed} events); {self._position()}"
        )

    def _cmd_inspect(self, args: List[str]) -> bool:
        self.emit(json.dumps(self.debugger.inspect(), indent=2))
        return True

    def _cmd_threads(self, args: List[str]) -> bool:
        for row in self.debugger.threads():
            self.emit(
                f"  t{row['thread']:<3} core {row['core']:<3} "
                f"{row['state']:<8} ops={row['operations']:<6} {row['body']}"
            )
        return True

    def _cmd_stats(self, args: List[str]) -> bool:
        prefix = args[0] if args else ""
        self.emit(json.dumps(self.debugger.stats(prefix), indent=2))
        return True

    def _cmd_save(self, args: List[str]) -> bool:
        if len(args) != 1:
            raise ReproError("save takes exactly one path")
        snapshot = self.debugger.save(args[0])
        self.emit(
            f"saved {snapshot.strategy} snapshot at event "
            f"{snapshot.events_processed} to {args[0]}"
        )
        return True

    def _cmd_result(self, args: List[str]) -> bool:
        self.emit(json.dumps(self.debugger.result(), indent=2, sort_keys=True))
        return True

    def _cmd_help(self, args: List[str]) -> bool:
        self.emit(_HELP)
        return True

    def _cmd_quit(self, args: List[str]) -> bool:
        return False


def script_commands(script: str) -> List[str]:
    """Split an ``--exec`` script into commands (';'-separated)."""
    return [part.strip() for part in script.split(";") if part.strip()]
