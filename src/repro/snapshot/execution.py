"""Checkpointable execution of one RunSpec.

:class:`SpecExecution` drives the same ``begin`` / ``advance`` / ``finish``
phases as :meth:`Manycore.run`, but in event-count slices, so a run can be
captured between slices (:meth:`capture`), preempted cooperatively
(:class:`ExecutionPreempted`), or rebuilt from a snapshot
(:meth:`from_snapshot`).  Slicing is behaviour-preserving: the event loop is
a pure function of its queue state, so a sliced run produces bit-identical
results to an uninterrupted one.

Restore comes in two strategies.  Workloads whose threads run on
serializable frame stacks capture the complete machine state
(:func:`repro.snapshot.native.capture_machine`) and restore in O(state)
without replaying a single event (:data:`STRATEGY_NATIVE`).  Everything
else falls back to deterministic-replay fast-forward: rebuild the machine
from the spec and advance it exactly ``snapshot.events_processed`` events
(:data:`STRATEGY_REPLAY`).  Both paths land on the same machine because
every source of randomness flows through seeded
:class:`~repro.sim.rng.DeterministicRng` streams — and :meth:`_verify_native`
proves it by comparing engine counters, the whole rng tree state, stats,
thread frame stacks, sync-object fingerprints, and per-thread progress
against the snapshot's native payload, raising :class:`SnapshotError` on any
divergence (e.g. the simulator code changed between save and restore).
"""

from __future__ import annotations

import time
import warnings
from pathlib import Path
from typing import Any, Callable, Dict, Optional

from repro.errors import SnapshotError
from repro.machine.manycore import Manycore
from repro.machine.results import SimResult
from repro.runner.executor import build_config_for
from repro.runner.spec import RunSpec
from repro.snapshot.format import (
    STRATEGY_NATIVE,
    STRATEGY_REPLAY,
    Snapshot,
    SnapshotWarning,
    checkpoint_path,
    save_snapshot,
    try_load_snapshot,
)
from repro.snapshot.native import capture_machine, restore_machine, sync_fingerprint

#: Default event budget, shared with :meth:`Manycore.run`.
DEFAULT_MAX_EVENTS = Manycore.DEFAULT_MAX_EVENTS

#: Slice size used when an execution only needs preemption checks (no
#: checkpoint interval): ~1 second of simulation between ``should_stop``
#: polls at typical event rates.
STOP_CHECK_EVENTS = 100_000


class ExecutionPreempted(Exception):
    """Control-flow signal: a run stopped cooperatively at a slice boundary.

    Deliberately *not* a :class:`~repro.errors.ReproError` — preemption is
    not a failure; it carries the final :class:`Snapshot` so the caller
    (e.g. a SIGTERM'd worker) can persist or ship it before exiting.
    """

    def __init__(self, snapshot: Snapshot) -> None:
        super().__init__(
            f"execution preempted after {snapshot.events_processed} events "
            f"(cycle {snapshot.clock})"
        )
        self.snapshot = snapshot


class SpecExecution:
    """One spec's simulation, held open between event slices."""

    def __init__(self, spec: RunSpec, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        from repro.runner.registry import REGISTRY

        self.spec = spec
        self.max_events = max_events
        self.machine = Manycore(build_config_for(spec))
        self.handle = REGISTRY.build(self.machine, spec.workload, spec.params_dict())
        self.machine.begin()
        #: How this execution came to life: ``None`` for a fresh run, the
        #: snapshot strategy for a restored one (stamped into result.extra).
        self.restore_strategy: Optional[str] = None
        #: Events re-fired to reach the snapshot point (0 for native restores).
        self.events_replayed: int = 0

    # ------------------------------------------------------------- stepping
    @property
    def events_processed(self) -> int:
        return self.machine.sim.events_processed

    @property
    def clock(self) -> int:
        return self.machine.sim.now

    def complete(self) -> bool:
        """True when no further advance can change the run's outcome."""
        return self.machine.run_complete(max_cycles=self.spec.max_cycles)

    def advance(self, max_events: Optional[int] = None) -> int:
        """Fire up to ``max_events`` events (capped by the cumulative event
        budget); returns how many actually fired."""
        remaining = self.max_events - self.machine.sim.events_processed
        if remaining <= 0:
            return 0
        budget = remaining if max_events is None else min(int(max_events), remaining)
        return self.machine.advance(
            max_events=budget, max_cycles=self.spec.max_cycles
        )

    def result(self) -> SimResult:
        """Finish the run (truncation/deadlock checks) and build the result.

        Mirrors :meth:`WorkloadHandle.run`: workloads that declare an
        ``operations`` metadata count get it stamped into ``result.extra``
        for completed runs, so resumed results match direct ones key-for-key.
        """
        result = self.machine.finish(
            max_cycles=self.spec.max_cycles, max_events=self.max_events
        )
        operations = self.handle.metadata.get("operations")
        if operations is not None and result.completed:
            result.extra.setdefault("operations", float(operations))
        if self.restore_strategy is not None:
            result.extra.setdefault(
                "native_restore",
                1.0 if self.restore_strategy == STRATEGY_NATIVE else 0.0,
            )
            result.extra.setdefault("events_replayed", float(self.events_replayed))
        return result

    # -------------------------------------------------------------- capture
    def _native_state(self) -> Dict[str, Any]:
        machine = self.machine
        return {
            "engine": machine.sim.checkpoint_state(),
            "rng": machine.rng.tree_getstate(),
            "stats": machine.stats.to_dict(),
            "finished_threads": machine._finished,
            "thread_operations": [t.operations_issued for t in machine.threads],
            "thread_frames": [
                None
                if thread.frames is None
                else [[frame.routine, frame.label] for frame in thread.frames]
                for thread in machine.threads
            ],
            "sync_objects": [sync_fingerprint(obj) for obj in machine.sync_objects],
        }

    def capture(self) -> Snapshot:
        """Snapshot the live run at the current slice boundary.

        Tries the native strategy first (full machine payload, O(state)
        restore); workloads whose live state is not natively serializable —
        generator-based thread bodies, opaque callbacks — fall back to the
        universal replay strategy transparently.
        """
        if self.complete():
            raise SnapshotError(
                "nothing to checkpoint: the run already ended "
                f"(after {self.events_processed} events)"
            )
        try:
            machine_payload: Optional[Dict[str, Any]] = capture_machine(self.machine)
            strategy = STRATEGY_NATIVE
        except SnapshotError:
            machine_payload = None
            strategy = STRATEGY_REPLAY
        return Snapshot(
            spec=self.spec,
            events_processed=self.events_processed,
            clock=self.clock,
            strategy=strategy,
            native=self._native_state(),
            machine=machine_payload,
        )

    # -------------------------------------------------------------- restore
    @classmethod
    def from_snapshot(
        cls, snapshot: Snapshot, max_events: int = DEFAULT_MAX_EVENTS
    ) -> "SpecExecution":
        """Rebuild a live execution from a snapshot and verify it.

        Raises :class:`SnapshotError` when the snapshot cannot be honoured
        (unknown strategy, replay divergence, native-state mismatch); the
        caller should fall back to from-scratch execution.
        """
        execution = cls(snapshot.spec, max_events=max_events)
        if snapshot.strategy == STRATEGY_REPLAY:
            execution._replay_to(snapshot)
            execution.events_replayed = snapshot.events_processed
        elif snapshot.strategy == STRATEGY_NATIVE:
            if not snapshot.machine:
                raise SnapshotError(
                    f"snapshot for [{snapshot.spec.label()}] declares "
                    f"native-state restore but carries no machine payload; "
                    f"re-create the checkpoint"
                )
            try:
                restore_machine(execution.machine, snapshot.machine)
            except SnapshotError:
                raise
            except (KeyError, TypeError, ValueError, IndexError) as error:
                raise SnapshotError(
                    f"malformed native machine payload for "
                    f"[{snapshot.spec.label()}]: {error}"
                )
        else:  # unreachable: Snapshot.__post_init__ validates the strategy
            raise SnapshotError(f"unknown snapshot strategy {snapshot.strategy!r}")
        execution.restore_strategy = snapshot.strategy
        execution._verify_native(snapshot)
        return execution

    def _replay_to(self, snapshot: Snapshot) -> None:
        """Deterministically fast-forward a fresh machine to the snapshot."""
        target = snapshot.events_processed
        while self.events_processed < target:
            if self.complete():
                raise SnapshotError(
                    f"replay diverged for [{self.spec.label()}]: the run ended "
                    f"after {self.events_processed} events but the snapshot "
                    f"was captured at {target}; the simulation code has "
                    f"changed since the checkpoint was written"
                )
            fired = self.advance(target - self.events_processed)
            if fired == 0:
                raise SnapshotError(
                    f"replay stalled for [{self.spec.label()}] at "
                    f"{self.events_processed} of {target} events "
                    f"(event budget exhausted)"
                )

    def _verify_native(self, snapshot: Snapshot) -> None:
        """Compare the fast-forwarded machine against the captured state."""
        if not snapshot.native:
            return  # a bare replay cursor has nothing to cross-check
        observed = self._native_state()
        diverged = sorted(
            section
            for section in set(observed) | set(snapshot.native)
            if observed.get(section) != snapshot.native.get(section)
        )
        if diverged:
            raise SnapshotError(
                f"restored machine diverged from snapshot for "
                f"[{self.spec.label()}] in: {', '.join(diverged)}; the "
                f"simulation code has changed since the checkpoint was written"
            )

    # ------------------------------------------------------------ completion
    def run_to_completion(
        self,
        checkpoint_every: Optional[int] = None,
        on_checkpoint: Optional[Callable[[Snapshot], None]] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> SimResult:
        """Drive the run to its end, checkpointing between slices.

        ``on_checkpoint`` receives a fresh :class:`Snapshot` every
        ``checkpoint_every`` events.  ``should_stop`` is polled between
        slices; when it returns True the run stops cooperatively and
        :class:`ExecutionPreempted` (carrying a final snapshot) is raised.
        With neither configured this is exactly :meth:`Manycore.run`.
        """
        if checkpoint_every is not None and checkpoint_every < 1:
            raise SnapshotError("checkpoint_every must be a positive event count")
        if checkpoint_every is None and should_stop is None:
            self.advance()
            return self.result()
        interval = checkpoint_every or STOP_CHECK_EVENTS
        while not self.complete():
            if should_stop is not None and should_stop():
                raise ExecutionPreempted(self.capture())  # repro: noqa[ERR001] -- not an error: a control-flow signal carrying the final snapshot (see class docstring)
            fired = self.advance(interval)
            if fired == 0:
                break  # event budget exhausted; result() reports the deadlock
            if (
                checkpoint_every is not None
                and on_checkpoint is not None
                and not self.complete()
            ):
                on_checkpoint(self.capture())
        return self.result()


# ------------------------------------------------------------------- drivers
def execute_with_checkpoints(
    spec: RunSpec,
    checkpoint_every: Optional[int] = None,
    checkpoint_dir: Optional[Any] = None,
    resume_from: Optional[Snapshot] = None,
    should_stop: Optional[Callable[[], bool]] = None,
    on_checkpoint: Optional[Callable[[Snapshot], None]] = None,
    auto_snapshot: Optional[int] = None,
) -> SimResult:
    """Run one spec with checkpointing, resuming from prior state if any.

    The checkpointed sibling of :func:`repro.runner.executor.execute_spec`:
    same contract (spec in, wall-clock-stamped :class:`SimResult` out), plus

    * resume — ``resume_from`` (an in-memory snapshot, e.g. shipped by the
      broker) or an existing ``<checkpoint_dir>/<spec key>.ckpt.json`` is
      restored first; an unusable or mismatched checkpoint is discarded with
      a structured :class:`SnapshotWarning` and the run starts from scratch
      (mirroring ResultCache's eviction of corrupt entries);
    * periodic capture — every ``checkpoint_every`` events the snapshot is
      written to ``checkpoint_dir`` and/or passed to ``on_checkpoint``;
    * auto-snapshot ring — with ``auto_snapshot=K`` each periodic snapshot
      is *also* banked as a ring file in ``checkpoint_dir`` (pruned to the
      last K), leaving a time-travel trail for ``repro debug --from`` that
      survives the spec's completion;
    * cooperative preemption — ``should_stop`` ends the run between slices
      with :class:`ExecutionPreempted`; the final snapshot is persisted to
      ``checkpoint_dir`` before the exception propagates.

    The checkpoint file is deleted once the spec completes, so a later run
    of the same spec starts clean.
    """
    started = time.perf_counter()
    path = (
        checkpoint_path(checkpoint_dir, spec) if checkpoint_dir is not None else None
    )
    ring = None
    if auto_snapshot is not None:
        if checkpoint_dir is None:
            raise SnapshotError(
                "auto_snapshot banks ring files into the checkpoint "
                "directory; none was given"
            )
        from repro.snapshot.ring import CheckpointRing

        ring = CheckpointRing(
            auto_snapshot, directory=checkpoint_dir, keep_in_memory=False
        )

    snapshot = resume_from
    reason: Optional[str] = None
    if snapshot is None and path is not None:
        snapshot, reason = try_load_snapshot(path)
    if snapshot is not None and snapshot.spec != spec:
        reason = (
            f"checkpoint was written for a different spec "
            f"[{snapshot.spec.label()}]"
        )
        snapshot = None

    execution: Optional[SpecExecution] = None
    if snapshot is not None:
        try:
            execution = SpecExecution.from_snapshot(snapshot)
        except SnapshotError as error:
            reason = str(error)
    if execution is None:
        if reason is not None:
            warnings.warn(
                f"discarding unusable checkpoint for [{spec.label()}], "
                f"running from scratch: {reason}",
                SnapshotWarning,
                stacklevel=2,
            )
            if path is not None:
                Path(path).unlink(missing_ok=True)
        execution = SpecExecution(spec)

    def _sink(snap: Snapshot) -> None:
        if path is not None:
            save_snapshot(snap, path)
        if ring is not None:
            ring.push(snap)
        if on_checkpoint is not None:
            on_checkpoint(snap)

    sink = (
        _sink
        if (path is not None or ring is not None or on_checkpoint is not None)
        else None
    )
    try:
        result = execution.run_to_completion(
            checkpoint_every=checkpoint_every,
            on_checkpoint=sink,
            should_stop=should_stop,
        )
    except ExecutionPreempted as preempted:
        if path is not None:
            save_snapshot(preempted.snapshot, path)
        if ring is not None:
            ring.push(preempted.snapshot)
        raise
    if path is not None:
        Path(path).unlink(missing_ok=True)
    result.extra.setdefault("wall_seconds", round(time.perf_counter() - started, 6))
    return result


def run_prefix(
    spec: RunSpec, events: int, max_events: int = DEFAULT_MAX_EVENTS
) -> SpecExecution:
    """Run a spec for (up to) ``events`` events and hand back the live run."""
    execution = SpecExecution(spec, max_events=max_events)
    execution.advance(events)
    if execution.complete():
        raise SnapshotError(
            f"[{spec.label()}] finished within {execution.events_processed} "
            f"events; there is nothing left to snapshot"
        )
    return execution


def snapshot_after(
    spec: RunSpec, events: int, max_events: int = DEFAULT_MAX_EVENTS
) -> Snapshot:
    """Snapshot a spec after exactly ``events`` events (``repro snapshot save``)."""
    return run_prefix(spec, events, max_events=max_events).capture()


def resume_to_completion(
    snapshot: Snapshot, max_events: int = DEFAULT_MAX_EVENTS
) -> SimResult:
    """Restore a snapshot and run it to its end (``repro snapshot restore``)."""
    started = time.perf_counter()
    execution = SpecExecution.from_snapshot(snapshot, max_events=max_events)
    result = execution.run_to_completion()
    result.extra.setdefault("wall_seconds", round(time.perf_counter() - started, 6))
    return result
