#!/usr/bin/env python
"""Multiprogramming: two programs share the chip and the Broadcast Memory.

WiSync tags every BM chunk with the PID of its owner (Section 4.4), so
different programs can share physical BM pages while remaining protected
from each other.  This example runs a barrier-heavy program and a
lock-heavy program concurrently on one WiSync machine, shows that both make
progress, and demonstrates the PID protection check and the tone-barrier
migration restriction (Section 5.2).
"""

from repro import Manycore, SyncFactory, wisync
from repro.analysis.tables import format_table
from repro.errors import ProtectionError, ToneBarrierError
from repro.isa.operations import Compute

CORES = 16


def main():
    machine = Manycore(wisync(num_cores=CORES))

    # Program A: 8 threads on cores 0-7 crossing a tone barrier.
    program_a = machine.new_program("barrier-app")
    sync_a = SyncFactory(program_a)
    barrier = sync_a.create_barrier(8, participants=list(range(8)))

    def body_a(ctx):
        for _ in range(6):
            yield Compute(ctx.rng.jitter(120))
            yield from barrier.wait(ctx)

    for core in range(8):
        program_a.add_thread(body_a, core_id=core)

    # Program B: 8 threads on cores 8-15 hammering a wireless lock.
    program_b = machine.new_program("lock-app")
    sync_b = SyncFactory(program_b)
    lock = sync_b.create_lock()
    counter = program_b.alloc_shared()

    def body_b(ctx):
        from repro.isa.operations import Read, Write
        for _ in range(5):
            yield from lock.acquire(ctx)
            value = yield Read(counter)
            yield Write(counter, value + 1)
            yield from lock.release(ctx)
            yield Compute(ctx.rng.jitter(80))

    for core in range(8, 16):
        program_b.add_thread(body_b, core_id=core)

    result = machine.run()

    rows = [
        ["barrier-app (pid %d)" % program_a.pid, 8, "tone barrier x6", "completed"],
        ["lock-app (pid %d)" % program_b.pid, 8,
         "counter=%d" % machine.memory.peek(counter), "completed"],
    ]
    print(format_table(["program", "threads", "work", "status"], rows,
                       title="Two programs sharing one WiSync chip"))
    print(f"\ntotal cycles: {result.total_cycles}, "
          f"wireless messages: {result.wireless_messages}, "
          f"BM entries allocated: {machine.fabric.allocator.allocated_count}")

    # PID protection: program B cannot touch program A's tone barrier entry.
    barrier_addr = barrier.bm_addr
    try:
        machine.fabric.memory.read(barrier_addr, pid=program_b.pid)
    except ProtectionError as error:
        print(f"\nPID protection works: {error}")

    # Tone-barrier participants cannot migrate (Section 5.2).
    try:
        machine.scheduler.migrate(0, 15)
    except ToneBarrierError as error:
        print(f"Migration restriction works: {error}")


if __name__ == "__main__":
    main()
