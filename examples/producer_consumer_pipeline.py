#!/usr/bin/env python
"""Producer/consumer pipeline over the Broadcast Memory (Section 4.3.4).

A producer thread streams 4-word payloads to a consumer through a
full/empty-flag slot.  On WiSync the payload moves as a single 15-cycle Bulk
message and the flag as one 5-cycle message; on the conventional machine the
same protocol runs through the coherence protocol.  The example prints the
cycles per payload hand-off for both machines.
"""

from repro import Manycore, SyncFactory, baseline, wisync
from repro.analysis.tables import format_table
from repro.isa.operations import Compute

PAYLOADS = 16


def run_pipeline(config):
    machine = Manycore(config)
    program = machine.new_program("pipeline")
    sync = SyncFactory(program)
    channel = sync.create_channel()
    received = []

    def producer(ctx):
        for index in range(PAYLOADS):
            yield Compute(ctx.rng.jitter(40))
            yield from channel.produce(ctx, (index, index * 2, index * 3, index * 4))

    def consumer(ctx):
        for _ in range(PAYLOADS):
            values = yield from channel.consume(ctx)
            received.append(values)
            yield Compute(ctx.rng.jitter(40))

    program.add_thread(producer, core_id=0)
    program.add_thread(consumer, core_id=machine.config.num_cores - 1)
    result = machine.run()
    assert received == [(i, i * 2, i * 3, i * 4) for i in range(PAYLOADS)]
    return result


def main():
    rows = []
    for config_fn in (baseline, wisync):
        config = config_fn(num_cores=16)
        result = run_pipeline(config)
        rows.append([
            config.name,
            result.total_cycles,
            round(result.total_cycles / PAYLOADS, 1),
            result.wireless_messages,
        ])
    print(format_table(
        ["configuration", "total cycles", "cycles/payload", "wireless msgs"],
        rows,
        title=f"Producer/consumer pipeline, {PAYLOADS} four-word payloads, far-apart cores",
    ))
    print("\nOn WiSync the hand-off latency is independent of the distance between")
    print("producer and consumer because the payload is broadcast wirelessly.")


if __name__ == "__main__":
    main()
