#!/usr/bin/env python
"""Quickstart: run the same barrier-heavy kernel on all four architectures.

Builds a small manycore for each Table 2 configuration (Baseline, Baseline+,
WiSyncNoT, WiSync), runs a kernel in which every thread repeatedly computes
and crosses a barrier, and prints execution time, wireless traffic, and the
speedup over Baseline.
"""

from repro import Manycore, SyncFactory, baseline, baseline_plus, wisync, wisync_not
from repro.analysis.tables import format_table
from repro.isa.operations import Compute

CORES = 16
ITERATIONS = 8


def build_and_run(config):
    machine = Manycore(config)
    program = machine.new_program("quickstart")
    sync = SyncFactory(program)
    barrier = sync.create_barrier(CORES)
    reducer = sync.create_reducer()

    def body(ctx):
        for _ in range(ITERATIONS):
            yield Compute(ctx.rng.jitter(150))
            yield from reducer.add(ctx, 1)
            yield from barrier.wait(ctx)

    for _ in range(CORES):
        program.add_thread(body)
    return machine.run()


def main():
    results = {}
    for config_fn in (baseline, baseline_plus, wisync_not, wisync):
        config = config_fn(num_cores=CORES)
        results[config.name] = build_and_run(config)

    base_cycles = results["baseline"].total_cycles
    rows = []
    for name, result in results.items():
        rows.append([
            name,
            result.total_cycles,
            round(base_cycles / result.total_cycles, 2),
            result.wireless_messages,
            result.wireless_collisions,
            f"{100 * result.data_channel_utilization():.2f}%",
        ])
    print(format_table(
        ["configuration", "cycles", "speedup vs baseline", "wireless msgs",
         "collisions", "data-channel util"],
        rows,
        title=f"Barrier+reduction kernel, {CORES} cores, {ITERATIONS} iterations",
    ))


if __name__ == "__main__":
    main()
