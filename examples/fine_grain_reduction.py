#!/usr/bin/env python
"""Fine-grain reduction scenario (paper Section 4.3.5).

A tight reduction loop — every thread repeatedly adds into one shared
accumulator — is the kind of fine-grain synchronization the paper's
introduction motivates.  This example compares the reduction throughput of
the conventional architecture (atomics through the cache hierarchy) with
WiSync (fetch&add on the Broadcast Memory), and shows the effect of the
amount of computation between updates.
"""

from repro import Manycore, SyncFactory, baseline, wisync
from repro.analysis.tables import format_table
from repro.isa.operations import Compute

CORES = 16
ADDS_PER_THREAD = 12


def run_reduction(config, think_cycles):
    machine = Manycore(config)
    program = machine.new_program("reduction")
    sync = SyncFactory(program)
    reducer = sync.create_reducer()

    def body(ctx):
        for _ in range(ADDS_PER_THREAD):
            yield Compute(ctx.rng.jitter(think_cycles))
            yield from reducer.add(ctx, 1)

    for _ in range(CORES):
        program.add_thread(body)
    result = machine.run()
    total_adds = CORES * ADDS_PER_THREAD
    return result.total_cycles, 1000.0 * total_adds / result.total_cycles


def main():
    rows = []
    for think in (50, 500, 5000):
        base_cycles, base_tp = run_reduction(baseline(CORES), think)
        ws_cycles, ws_tp = run_reduction(wisync(CORES), think)
        rows.append([think, base_cycles, ws_cycles,
                     round(base_tp, 2), round(ws_tp, 2),
                     round(base_cycles / ws_cycles, 2)])
    print(format_table(
        ["compute between adds (cyc)", "baseline cycles", "wisync cycles",
         "baseline adds/kcycle", "wisync adds/kcycle", "speedup"],
        rows,
        title=f"Shared reduction, {CORES} threads x {ADDS_PER_THREAD} adds",
    ))
    print("\nThe tighter the reduction loop, the larger WiSync's advantage —")
    print("exactly the trend of the paper's CAS kernels (Figure 9).")


if __name__ == "__main__":
    main()
