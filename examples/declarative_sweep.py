"""Declarative sweeps: the experiment grid as data, analysis as a frame.

Builds the Figure 7 grid as a :class:`SweepSpec`, runs it once serially and
once on a process pool (verifying bit-identical cycle counts), re-runs it
against an on-disk cache to show that nothing is re-simulated, and ends by
piping the sweep's :class:`MetricFrame` through a derive -> where -> pivot
chain — the analysis API every experiment table is built on.

Run with:
    PYTHONPATH=src python examples/declarative_sweep.py
"""

import tempfile
import time

from repro import ParallelExecutor, ResultCache, Runner, RunSpec, SweepSpec, workload_names
from repro.analysis.tables import render_mapping


def main() -> None:
    print("registered workloads:", ", ".join(workload_names()))

    sweep = SweepSpec.grid(
        name="fig7-demo",
        workload="tightloop",
        params=[{"iterations": 3}],
        configs=["Baseline", "Baseline+", "WiSyncNoT", "WiSync"],
        core_counts=[16, 32],
    )
    print(f"sweep {sweep.name!r}: {len(sweep)} runs")

    serial = Runner()
    started = time.perf_counter()
    serial_result = serial.run(sweep)
    serial_seconds = time.perf_counter() - started

    parallel = Runner(executor=ParallelExecutor(max_workers=4))
    started = time.perf_counter()
    parallel_result = parallel.run(sweep)
    parallel_seconds = time.perf_counter() - started

    for spec, result in serial_result:
        other = parallel_result.result_for(spec)
        assert result.total_cycles == other.total_cycles, spec.label()
        print(f"  {spec.label():55s} {result.total_cycles:>10,} cycles")
    print(f"serial {serial_seconds:.2f}s vs parallel {parallel_seconds:.2f}s "
          "(identical cycle counts)")

    with tempfile.TemporaryDirectory() as cache_dir:
        cached_runner = Runner(cache=ResultCache(cache_dir))
        first = cached_runner.run(sweep)
        second = cached_runner.run(sweep)
        print(f"cache pass 1: {first.num_simulated} simulated, {first.num_cached} cached")
        print(f"cache pass 2: {second.num_simulated} simulated, {second.num_cached} cached")
        assert second.num_simulated == 0

    # A single extra point: specs are hashable, serializable pure data.
    spec = RunSpec(workload="cas", params={"kind": "fifo", "critical_section_instructions": 64,
                                           "successes_per_thread": 2},
                   config="WiSync", num_cores=16)
    result = Runner().run_spec(spec)
    print(f"one-off {spec.label()}: {result.total_cycles:,} cycles "
          f"(key {spec.key()[:12]}…)")

    # Analysis is a frame, not hand-rolled dict loops: one typed row per grid
    # point, chainable derive/where/pivot, lossless JSON/CSV round trips.
    frame = serial_result.frame()
    table = (
        frame
        .derive("cycles_per_iteration", lambda row: row["cycles"] / row["iterations"])
        .where(config=("Baseline", "WiSync"))
        .pivot(index=("cores",), series="config", values="cycles_per_iteration")
        .to_dict()
    )
    print()
    print(render_mapping(table, index_headers=("cores",), sort_rows=True,
                         title="TightLoop cycles/iteration (from MetricFrame)"))
    speedups = frame.speedup_over("Baseline").where(config="WiSync")
    for row in speedups.rows():
        print(f"  WiSync speedup over Baseline at {row['cores']:>2} cores: "
              f"{row['speedup']:.1f}x")


if __name__ == "__main__":
    main()
